package fs

import (
	"bytes"
	"fmt"
	"io"
	"log"
	"testing"

	"eevfs/internal/disk"
)

// Streaming data-plane throughput and allocation profile: the
// BENCH_stream.json numbers behind make bench-compare. The allocs/op
// columns are the O(chunk) guard — a 64 MB streamed read must not
// allocate meaningfully more than a 1 MB one, because every data frame
// cycles through the shared chunk pool.

func benchStreamCluster(b *testing.B) *Client {
	b.Helper()
	quiet := log.New(io.Discard, "", 0)
	n, err := StartNode(NodeConfig{
		Addr:             "127.0.0.1:0",
		RootDir:          b.TempDir(),
		DataDisks:        2,
		DataModel:        disk.ModelType1,
		BufferModel:      disk.ModelType1,
		IdleThresholdSec: 5,
		TimeScale:        2000,
		InjectLatency:    false, // pure data-path numbers
		Logger:           quiet,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { n.Close() })
	srv, err := StartServer(ServerConfig{
		Addr:      "127.0.0.1:0",
		NodeAddrs: []string{n.Addr()},
		Logger:    quiet,
		Health:    HealthConfig{ProbeInterval: -1},
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { srv.Close() })
	cl, err := Dial(srv.Addr())
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { cl.Close() })
	return cl
}

func benchStreamRead(b *testing.B, size int) {
	cl := benchStreamCluster(b)
	content := bytes.Repeat([]byte("streaming-data-plane-payload...."), (size+31)/32)[:size]
	if err := cl.Create("bench.dat", content); err != nil {
		b.Fatal(err)
	}
	// One warm-up pass establishes the connection and primes the pool.
	if _, _, err := cl.ReadTo("bench.dat", io.Discard); err != nil {
		b.Fatal(err)
	}
	buf := make([]byte, 64<<10)
	b.SetBytes(int64(size))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := cl.OpenRead("bench.dat", StreamOptions{})
		if err != nil {
			b.Fatal(err)
		}
		n, err := io.CopyBuffer(io.Discard, r, buf)
		if err != nil || n != int64(size) {
			b.Fatalf("copy: n=%d err=%v", n, err)
		}
		if err := r.Close(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStreamRead1KB(b *testing.B)  { benchStreamRead(b, 1<<10) }
func BenchmarkStreamRead1MB(b *testing.B)  { benchStreamRead(b, 1<<20) }
func BenchmarkStreamRead64MB(b *testing.B) { benchStreamRead(b, 64<<20) }

func BenchmarkStreamWrite1MB(b *testing.B) {
	cl := benchStreamCluster(b)
	const size = 1 << 20
	content := bytes.Repeat([]byte("w"), size)
	if err := cl.Create("bench.dat", []byte("seed")); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(size)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cl.WriteFrom("bench.dat", size, bytes.NewReader(content)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStreamReadRPCBaseline is the comparison column: the
// whole-payload RPC read of the same 1 MB file, which materializes the
// entire content in one allocation on both sides.
func BenchmarkStreamReadRPCBaseline1MB(b *testing.B) {
	cl := benchStreamCluster(b)
	content := bytes.Repeat([]byte("r"), 1<<20)
	if err := cl.Create("bench.dat", content); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(1 << 20)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got, _, err := cl.Read("bench.dat")
		if err != nil {
			b.Fatal(err)
		}
		if len(got) != 1<<20 {
			b.Fatal(fmt.Errorf("short read: %d", len(got)))
		}
	}
}
