package fs

import (
	"errors"
	"fmt"
	"os"
	"testing"
	"time"

	"eevfs/internal/proto"
	"eevfs/internal/simtest/leak"
	"eevfs/internal/telemetry"
)

// loadTestAddrs boots a cluster shaped for load runs (latency injection
// off: the harness measures the stack, not the disk model) and returns
// the server addresses to aim RunLoad at.
func loadTestAddrs(t *testing.T, servers, nodes int) []string {
	t.Helper()
	if servers <= 1 {
		_, srv, _ := testCluster(t, nodes, func(c *NodeConfig) {
			c.InjectLatency = false
			c.IdleThresholdSec = 0
		})
		return []string{srv.Addr()}
	}
	// The chaos-test transport the group helper defaults to (250ms
	// timeouts, 2-strike health) declares nodes dead under a CPU storm;
	// load runs want the production defaults.
	g := startGroup(t, servers, nodes, func(_ int, c *ServerConfig) {
		c.Transport = proto.TransportConfig{}
		c.Health = HealthConfig{FailThreshold: 3, ProbeInterval: time.Second}
		c.WriteTimeout = 30 * time.Second
	})
	return g.addrs
}

// TestLoadSmokeAccounting: a tiny in-process load run must complete with
// consistent accounting — issued == completed + failed, zero errors on a
// healthy cluster, and latency observations for every op issued.
func TestLoadSmokeAccounting(t *testing.T) {
	leak.Check(t)
	addrs := loadTestAddrs(t, 1, 2)
	reg := telemetry.NewRegistry()
	var reports int
	res, err := RunLoad(LoadConfig{
		ServerAddrs: addrs,
		Clients:     32,
		Conns:       4,
		MaxOps:      800,
		Duration:    30 * time.Second, // backstop; MaxOps trips first
		RatePerSec:  4000,
		Files:       64,
		FileSize:    2 << 10,
		WriteFrac:   0.1,
		StreamFrac:  0.2,
		Seed:        1,
		Registry:    reg,
		ReportEvery: 50 * time.Millisecond,
		OnReport:    func(LoadReport) { reports++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Issued != res.Completed+res.Failed {
		t.Fatalf("accounting broken: issued %d != completed %d + failed %d",
			res.Issued, res.Completed, res.Failed)
	}
	if res.Failed != 0 || len(res.Errors) != 0 {
		t.Fatalf("healthy cluster produced errors: failed=%d taxonomy=%v", res.Failed, res.Errors)
	}
	if res.Issued == 0 {
		t.Fatal("no ops issued")
	}
	var opTotal int64
	for class, st := range res.Ops {
		opTotal += st.Count
		if st.Count > 0 && st.P50 <= 0 {
			t.Errorf("op class %s: %d ops but zero p50", class, st.Count)
		}
	}
	if opTotal != res.Issued {
		t.Fatalf("per-class counts sum to %d, issued %d", opTotal, res.Issued)
	}
	if res.Ops[LoadOpWrite].Count == 0 || res.Ops[LoadOpStream].Count == 0 {
		t.Fatalf("op mix not exercised: %+v", res.Ops)
	}
	if reports == 0 {
		t.Error("no live reports emitted")
	}
	if res.AchievedRate <= 0 {
		t.Fatalf("non-positive achieved rate %g", res.AchievedRate)
	}
	// The transport taxonomy must have flowed into the same registry.
	if res.Counters["proto.rt.calls"] == 0 {
		t.Error("transport metrics missing from the result counters")
	}
}

// TestLoadClosedLoop: RatePerSec 0 must run back-to-back (closed loop)
// and still account exactly.
func TestLoadClosedLoop(t *testing.T) {
	leak.Check(t)
	addrs := loadTestAddrs(t, 1, 2)
	res, err := RunLoad(LoadConfig{
		ServerAddrs: addrs,
		Clients:     16,
		Conns:       4,
		MaxOps:      400,
		Duration:    30 * time.Second,
		Files:       32,
		FileSize:    1 << 10,
		Seed:        2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Issued != res.Completed+res.Failed || res.Failed != 0 {
		t.Fatalf("closed-loop accounting broken: %+v", res)
	}
	if res.OfferedRate != 0 {
		t.Fatalf("closed loop reported offered rate %g", res.OfferedRate)
	}
}

// TestLoadValidation: broken configurations are rejected before any
// connection is dialed.
func TestLoadValidation(t *testing.T) {
	bad := []LoadConfig{
		{},
		{ServerAddrs: []string{"127.0.0.1:1"}}, // no clients
		{ServerAddrs: []string{"127.0.0.1:1"}, Clients: 4},                                             // no bound
		{ServerAddrs: []string{"127.0.0.1:1"}, Clients: 4, MaxOps: 1, RatePerSec: -2},                  // negative rate
		{ServerAddrs: []string{"127.0.0.1:1"}, Clients: 4, MaxOps: 1, WriteFrac: 0.8, StreamFrac: 0.5}, // mix > 1
		{ServerAddrs: []string{"127.0.0.1:1"}, Clients: 4, MaxOps: 1, RatePerSec: 10, Process: "nope"},
	}
	for i, cfg := range bad {
		if _, err := RunLoad(cfg); err == nil {
			t.Errorf("case %d: invalid load config accepted", i)
		}
	}
}

// TestLoadErrorTaxonomy: ops against a dead node land in the typed
// error taxonomy rather than vanishing or crashing the run.
func TestLoadErrorTaxonomy(t *testing.T) {
	leak.Check(t)
	cl, srv, nodes := testCluster(t, 2, func(c *NodeConfig) {
		c.InjectLatency = false
		c.IdleThresholdSec = 0
	})
	_ = cl
	// Preload through a throwaway run, then kill every node so lookups
	// fail over to nothing: reads die with unavailable/transport errors.
	if _, err := RunLoad(LoadConfig{
		ServerAddrs: []string{srv.Addr()}, Clients: 4, MaxOps: 8,
		Duration: 10 * time.Second, Files: 8, FileSize: 512, Seed: 3,
	}); err != nil {
		t.Fatal(err)
	}
	for _, n := range nodes {
		n.Close()
	}
	res, err := RunLoad(LoadConfig{
		ServerAddrs: []string{srv.Addr()}, Clients: 4, MaxOps: 40,
		Duration: 30 * time.Second, Files: 8, FileSize: 512, Seed: 4,
		SkipPreload: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Issued != res.Completed+res.Failed {
		t.Fatalf("accounting broken under faults: %+v", res)
	}
	if res.Failed == 0 || len(res.Errors) == 0 {
		t.Fatalf("dead nodes produced no typed errors: %+v", res)
	}
}

// TestLoadHighFanIn is the ≥10,000-concurrent-clients acceptance run
// against a live replicated group, gated behind EEVFS_LOAD_HEAVY because
// it wants real cores and a few seconds of wall clock. The CI load-smoke
// job runs it without the race detector.
func TestLoadHighFanIn(t *testing.T) {
	if os.Getenv("EEVFS_LOAD_HEAVY") == "" {
		t.Skip("set EEVFS_LOAD_HEAVY=1 to run the 10k-client fan-in test")
	}
	leak.Check(t)
	addrs := loadTestAddrs(t, 3, 3)
	res, err := RunLoad(LoadConfig{
		ServerAddrs: addrs,
		Clients:     10000,
		Conns:       64,
		Duration:    8 * time.Second,
		RatePerSec:  12000,
		Files:       256,
		FileSize:    4 << 10,
		WriteFrac:   0.05,
		StreamFrac:  0.05,
		Seed:        5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Issued != res.Completed+res.Failed {
		t.Fatalf("accounting broken at 10k clients: %+v", res)
	}
	if res.Failed != 0 {
		t.Fatalf("10k-client run produced %d typed errors: %v", res.Failed, res.Errors)
	}
	if res.Issued < 1000 {
		t.Fatalf("only %d ops issued in 8s at 10k clients", res.Issued)
	}
	t.Logf("10k clients: issued=%d achieved=%.0f/s read p99=%.1fms",
		res.Issued, res.AchievedRate, res.Ops[LoadOpRead].P99*1000)
}

// timeoutErr satisfies net.Error with Timeout()==true, so a wrapping
// proto.TransportError classifies as a deadline death.
type timeoutErr struct{}

func (timeoutErr) Error() string   { return "i/o timeout" }
func (timeoutErr) Timeout() bool   { return true }
func (timeoutErr) Temporary() bool { return true }

// TestClassifyLoadErr pins the harness error taxonomy: every typed error
// the stack produces files into a stable bucket, wrapped or not.
func TestClassifyLoadErr(t *testing.T) {
	cases := []struct {
		err  error
		want string
	}{
		{ErrNotPrimary, "remote.notprimary"},
		{fmt.Errorf("lookup: %w", ErrNotPrimary), "remote.notprimary"},
		{ErrFileNotFound, "remote.notfound"},
		{ErrNodeUnavailable, "remote.unavailable"},
		{&proto.TransportError{Addr: "x", Attempts: 1, Err: timeoutErr{}}, "transport.timeout"},
		{&proto.TransportError{Addr: "x", Attempts: 1, Err: errors.New("reset")}, "transport"},
		{&proto.RemoteError{Code: proto.CodeGeneric, Msg: "boom"}, "remote.generic"},
		{errors.New("mystery"), "other"},
	}
	for _, c := range cases {
		if got := classifyLoadErr(c.err); got != c.want {
			t.Errorf("classifyLoadErr(%v) = %q, want %q", c.err, got, c.want)
		}
	}
}
