package fs

import (
	"bytes"
	"fmt"
	"io"
	"log"
	"net"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"eevfs/internal/disk"
	"eevfs/internal/proto"
)

// testCluster spins up a server plus nodes on loopback with a fast model
// clock, returning a connected client.
func testCluster(t *testing.T, numNodes int, mod func(*NodeConfig)) (*Client, *Server, []*Node) {
	t.Helper()
	return testClusterSrv(t, numNodes, mod, nil)
}

// testClusterSrv is testCluster with a server-config hook too.
func testClusterSrv(t *testing.T, numNodes int, mod func(*NodeConfig), srvMod func(*ServerConfig)) (*Client, *Server, []*Node) {
	t.Helper()
	quiet := log.New(io.Discard, "", 0)
	var nodes []*Node
	var addrs []string
	for i := 0; i < numNodes; i++ {
		cfg := NodeConfig{
			Addr:             "127.0.0.1:0",
			RootDir:          t.TempDir(),
			DataDisks:        2,
			DataModel:        disk.ModelType1,
			BufferModel:      disk.ModelType1,
			IdleThresholdSec: 5,
			TimeScale:        2000, // 5 s model = 2.5 ms real
			InjectLatency:    true,
			Logger:           quiet,
		}
		if mod != nil {
			mod(&cfg)
		}
		n, err := StartNode(cfg)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { n.Close() })
		nodes = append(nodes, n)
		addrs = append(addrs, n.Addr())
	}
	scfg := ServerConfig{Addr: "127.0.0.1:0", NodeAddrs: addrs, Logger: quiet}
	if srvMod != nil {
		srvMod(&scfg)
	}
	srv, err := StartServer(scfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	cl, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	return cl, srv, nodes
}

func TestCreateReadRoundTrip(t *testing.T) {
	cl, _, _ := testCluster(t, 2, nil)
	content := bytes.Repeat([]byte("eevfs"), 1000)
	if err := cl.Create("a.dat", content); err != nil {
		t.Fatal(err)
	}
	got, fromBuffer, err := cl.Read("a.dat")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, content) {
		t.Fatal("content mismatch")
	}
	if fromBuffer {
		t.Fatal("unprefetched read claimed to come from the buffer disk")
	}
}

func TestReadMissingFile(t *testing.T) {
	cl, _, _ := testCluster(t, 1, nil)
	if _, _, err := cl.Read("ghost"); err == nil || !strings.Contains(err.Error(), "no such file") {
		t.Fatalf("err = %v", err)
	}
}

func TestCreateDuplicateRejected(t *testing.T) {
	cl, _, _ := testCluster(t, 1, nil)
	if err := cl.Create("dup", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := cl.Create("dup", []byte("y")); err == nil {
		t.Fatal("duplicate create accepted")
	}
}

func TestCreateEmptyRejected(t *testing.T) {
	cl, _, _ := testCluster(t, 1, nil)
	if err := cl.Create("empty", nil); err == nil {
		t.Fatal("empty create accepted")
	}
}

func TestListAndDelete(t *testing.T) {
	cl, _, _ := testCluster(t, 2, nil)
	for _, name := range []string{"b", "a", "c"} {
		if err := cl.Create(name, []byte("data")); err != nil {
			t.Fatal(err)
		}
	}
	names, err := cl.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 3 || names[0] != "a" || names[2] != "c" {
		t.Fatalf("List = %v", names)
	}
	if err := cl.Delete("b"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := cl.Read("b"); err == nil {
		t.Fatal("deleted file still readable")
	}
	if err := cl.Delete("b"); err == nil {
		t.Fatal("double delete accepted")
	}
	names, _ = cl.List()
	if len(names) != 2 {
		t.Fatalf("List after delete = %v", names)
	}
}

func TestRoundRobinPlacementAcrossNodes(t *testing.T) {
	cl, _, nodes := testCluster(t, 2, nil)
	for i := 0; i < 4; i++ {
		if err := cl.Create(fmt.Sprintf("f%d", i), []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	// Creation order alternates between the two nodes.
	if nodes[0].meta.Len() != 2 || nodes[1].meta.Len() != 2 {
		t.Fatalf("node file counts = %d/%d, want 2/2",
			nodes[0].meta.Len(), nodes[1].meta.Len())
	}
}

func TestPrefetchServesFromBuffer(t *testing.T) {
	cl, _, _ := testCluster(t, 2, nil)
	hot := bytes.Repeat([]byte("hot"), 500)
	if err := cl.Create("hot.dat", hot); err != nil {
		t.Fatal(err)
	}
	if err := cl.Create("cold.dat", []byte("cold")); err != nil {
		t.Fatal(err)
	}
	// Make hot.dat popular.
	for i := 0; i < 5; i++ {
		if _, _, err := cl.Read("hot.dat"); err != nil {
			t.Fatal(err)
		}
	}
	n, err := cl.Prefetch(1)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("prefetched %d files, want 1", n)
	}
	got, fromBuffer, err := cl.Read("hot.dat")
	if err != nil {
		t.Fatal(err)
	}
	if !fromBuffer {
		t.Fatal("prefetched file not served from buffer disk")
	}
	if !bytes.Equal(got, hot) {
		t.Fatal("buffer copy corrupted")
	}
	// The cold file still comes from its data disk.
	_, fromBuffer, err = cl.Read("cold.dat")
	if err != nil {
		t.Fatal(err)
	}
	if fromBuffer {
		t.Fatal("unprefetched file served from buffer")
	}
}

func TestStatsReportEnergyAndStates(t *testing.T) {
	cl, _, _ := testCluster(t, 2, nil)
	if err := cl.Create("f", bytes.Repeat([]byte("z"), 10000)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := cl.Read("f"); err != nil {
		t.Fatal(err)
	}
	stats, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	// 2 nodes x (1 buffer + 2 data) disks.
	if len(stats.Disks) != 6 {
		t.Fatalf("got %d disk stats, want 6", len(stats.Disks))
	}
	var totalEnergy float64
	var requests int64
	for _, ds := range stats.Disks {
		if !strings.HasPrefix(ds.Name, "node") {
			t.Errorf("disk name %q not node-prefixed", ds.Name)
		}
		totalEnergy += ds.EnergyJ
		requests += ds.Requests
	}
	if totalEnergy <= 0 {
		t.Error("no energy accounted")
	}
	if requests < 2 { // one write, one read
		t.Errorf("requests = %d, want >= 2", requests)
	}
}

func TestIdleThresholdSpinsDiskDown(t *testing.T) {
	cl, _, nodes := testCluster(t, 1, nil)
	if err := cl.Create("f", []byte("data")); err != nil {
		t.Fatal(err)
	}
	// Model threshold is 5 s at scale 2000 => 2.5 ms real. Wait well past
	// threshold + spin-down.
	deadline := time.Now().Add(2 * time.Second)
	for {
		stats, err := cl.Stats()
		if err != nil {
			t.Fatal(err)
		}
		asleep := 0
		for _, ds := range stats.Disks {
			if ds.State == "standby" {
				asleep++
			}
		}
		if asleep >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no disk reached standby; stats: %+v", stats.Disks)
		}
		time.Sleep(5 * time.Millisecond)
	}
	// A read wakes the disk and succeeds (paying the modeled spin-up).
	if _, _, err := cl.Read("f"); err != nil {
		t.Fatal(err)
	}
	hits, misses, _ := nodes[0].Counters()
	if hits != 0 || misses == 0 {
		t.Fatalf("hits=%d misses=%d", hits, misses)
	}
	stats, _ := cl.Stats()
	spinUps := int64(0)
	for _, ds := range stats.Disks {
		spinUps += ds.SpinUps
	}
	if spinUps == 0 {
		t.Fatal("reactivated disk recorded no spin-ups")
	}
}

func TestBufferDiskNeverSleeps(t *testing.T) {
	cl, _, _ := testCluster(t, 1, nil)
	if err := cl.Create("f", []byte("data")); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond) // many model-threshold periods
	stats, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	for _, ds := range stats.Disks {
		if strings.HasSuffix(ds.Name, "buffer") && ds.State == "standby" {
			t.Fatal("buffer disk went to standby")
		}
	}
}

func TestWriteBufferAbsorbsWrites(t *testing.T) {
	cl, _, nodes := testCluster(t, 1, func(c *NodeConfig) { c.WriteBuffer = true })
	if err := cl.Create("f", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	buffered, err := cl.Write("f", []byte("v2-new-content"))
	if err != nil {
		t.Fatal(err)
	}
	if !buffered {
		t.Fatal("write not absorbed by the write buffer")
	}
	// Reads see the newest (buffered) content.
	got, fromBuffer, err := cl.Read("f")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "v2-new-content" {
		t.Fatalf("read %q after buffered write", got)
	}
	if !fromBuffer {
		t.Fatal("dirty file not served from buffer")
	}
	_, _, bufWrites := nodes[0].Counters()
	if bufWrites != 2 { // create upload + overwrite both buffered
		t.Fatalf("buffered writes = %d, want 2", bufWrites)
	}
}

func TestWriteBufferFlushOnClose(t *testing.T) {
	quiet := log.New(io.Discard, "", 0)
	root := t.TempDir()
	node, err := StartNode(NodeConfig{
		Addr: "127.0.0.1:0", RootDir: root, DataDisks: 1,
		DataModel: disk.ModelType1, BufferModel: disk.ModelType1,
		TimeScale: 2000, InjectLatency: true, WriteBuffer: true, Logger: quiet,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := StartServer(ServerConfig{Addr: "127.0.0.1:0", NodeAddrs: []string{node.Addr()}, Logger: quiet})
	if err != nil {
		t.Fatal(err)
	}
	cl, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Create("f", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	cl.Close()
	srv.Close()
	if err := node.Close(); err != nil {
		t.Fatal(err)
	}
	// After shutdown the data disk directory must hold the flushed copy.
	data, err := readFileInDir(root, "data0")
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "payload" {
		t.Fatalf("flushed content = %q", data)
	}
}

func readFileInDir(root, sub string) ([]byte, error) {
	entries, err := osReadDir(root + "/" + sub)
	if err != nil {
		return nil, err
	}
	if len(entries) != 1 {
		return nil, fmt.Errorf("want exactly one file in %s, got %d", sub, len(entries))
	}
	return osReadFile(root + "/" + sub + "/" + entries[0])
}

func TestConcurrentClients(t *testing.T) {
	cl, srv, _ := testCluster(t, 2, nil)
	if err := cl.Create("shared", bytes.Repeat([]byte("s"), 2000)); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := Dial(srv.Addr())
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			for i := 0; i < 10; i++ {
				if _, _, err := c.Read("shared"); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if srv.AccessCount() < 80 {
		t.Fatalf("access log has %d entries, want >= 80", srv.AccessCount())
	}
}

func TestMalformedFrameGetsErrorNotCrash(t *testing.T) {
	_, srv, _ := testCluster(t, 1, nil)
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// A CreateReq frame whose payload is garbage.
	if err := proto.WriteFrame(conn, proto.TCreateReq, []byte{0xFF, 0xFF, 0xFF, 0xFF, 1, 2}); err != nil {
		t.Fatal(err)
	}
	ty, _, err := proto.ReadFrame(conn)
	if err != nil {
		t.Fatal(err)
	}
	if ty != proto.TError {
		t.Fatalf("got type %d, want TError", ty)
	}
	// The connection is still usable afterwards.
	_, _, err = proto.RoundTrip(conn, proto.TListReq, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestUnknownMessageTypeGetsError(t *testing.T) {
	_, srv, _ := testCluster(t, 1, nil)
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := proto.WriteFrame(conn, proto.Type(200), nil); err != nil {
		t.Fatal(err)
	}
	ty, _, err := proto.ReadFrame(conn)
	if err != nil || ty != proto.TError {
		t.Fatalf("type=%d err=%v", ty, err)
	}
}

func TestNodeFailureSurfacesAsError(t *testing.T) {
	cl, _, nodes := testCluster(t, 2, nil)
	if err := cl.Create("f0", []byte("x")); err != nil { // node 0
		t.Fatal(err)
	}
	if err := cl.Create("f1", []byte("y")); err != nil { // node 1
		t.Fatal(err)
	}
	nodes[0].Close()
	// Reads against the dead node fail cleanly...
	if _, _, err := cl.Read("f0"); err == nil {
		t.Fatal("read from dead node succeeded")
	}
	// ...while the healthy node keeps serving.
	if _, _, err := cl.Read("f1"); err != nil {
		t.Fatalf("healthy node read failed: %v", err)
	}
}

func TestServerValidation(t *testing.T) {
	if _, err := StartServer(ServerConfig{Addr: "127.0.0.1:0"}); err == nil {
		t.Fatal("server with no nodes accepted")
	}
}

func TestNodeValidation(t *testing.T) {
	bad := []NodeConfig{
		{Addr: "127.0.0.1:0", DataDisks: 1, DataModel: disk.ModelType1, BufferModel: disk.ModelType1},                                     // no root
		{Addr: "127.0.0.1:0", RootDir: "x", DataDisks: 0, DataModel: disk.ModelType1, BufferModel: disk.ModelType1},                       // no disks
		{Addr: "127.0.0.1:0", RootDir: "x", DataDisks: 1, DataModel: disk.Model{}, BufferModel: disk.ModelType1},                          // bad model
		{Addr: "127.0.0.1:0", RootDir: "x", DataDisks: 1, DataModel: disk.ModelType1, BufferModel: disk.ModelType1, IdleThresholdSec: -1}, // bad threshold
	}
	for i, cfg := range bad {
		if _, err := StartNode(cfg); err == nil {
			t.Errorf("case %d: invalid node config accepted", i)
		}
	}
}

func TestClockScaling(t *testing.T) {
	c := NewClock(100)
	start := c.Now()
	c.Sleep(0.1) // 0.1 model sec = 1 ms real
	if elapsed := float64(c.Now() - start); elapsed < 0.1 {
		t.Fatalf("model elapsed %g, want >= 0.1", elapsed)
	}
	// Zero scale defaults to 1.
	if NewClock(0) == nil {
		t.Fatal("nil clock")
	}
	c.Sleep(-1) // no-op, must not panic
}

// Thin indirections so the flush test reads naturally.
func osReadDir(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		names = append(names, e.Name())
	}
	return names, nil
}

func osReadFile(path string) ([]byte, error) { return os.ReadFile(path) }

func TestStripedStorageRoundTrip(t *testing.T) {
	cl, _, nodes := testCluster(t, 1, func(c *NodeConfig) { c.StripeChunkBytes = 1000 })
	content := bytes.Repeat([]byte("0123456789"), 350) // 3500 B = 4 chunks over 2 disks
	if err := cl.Create("striped.dat", content); err != nil {
		t.Fatal(err)
	}
	got, fromBuffer, err := cl.Read("striped.dat")
	if err != nil {
		t.Fatal(err)
	}
	if fromBuffer {
		t.Fatal("striped read claimed buffer")
	}
	if !bytes.Equal(got, content) {
		t.Fatalf("striped content mismatch: %d vs %d bytes", len(got), len(content))
	}
	// Both data disks must have serviced chunk requests.
	stats := nodes[0].statsResp()
	servicedDisks := 0
	for _, ds := range stats.Disks {
		if ds.Name != "buffer" && ds.Requests > 0 {
			servicedDisks++
		}
	}
	if servicedDisks != 2 {
		t.Fatalf("chunks landed on %d disks, want 2", servicedDisks)
	}
}

func TestStripedPrefetchAndDelete(t *testing.T) {
	cl, _, _ := testCluster(t, 1, func(c *NodeConfig) { c.StripeChunkBytes = 1000 })
	content := bytes.Repeat([]byte("ab"), 2500) // 5000 B = 5 chunks
	if err := cl.Create("s.dat", content); err != nil {
		t.Fatal(err)
	}
	if _, _, err := cl.Read("s.dat"); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Prefetch(1); err != nil {
		t.Fatal(err)
	}
	got, fromBuffer, err := cl.Read("s.dat")
	if err != nil {
		t.Fatal(err)
	}
	if !fromBuffer || !bytes.Equal(got, content) {
		t.Fatalf("prefetched striped read: buffer=%v len=%d", fromBuffer, len(got))
	}
	if err := cl.Delete("s.dat"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := cl.Read("s.dat"); err == nil {
		t.Fatal("deleted striped file still readable")
	}
}

func TestStripedWriteBufferFlush(t *testing.T) {
	cl, _, nodes := testCluster(t, 1, func(c *NodeConfig) {
		c.StripeChunkBytes = 1000
		c.WriteBuffer = true
	})
	content := bytes.Repeat([]byte("x"), 2500)
	if err := cl.Create("w.dat", content); err != nil {
		t.Fatal(err)
	}
	// Force the flush and verify the striped result survives a reread
	// from the data disks.
	nodes[0].flushAll()
	got, fromBuffer, err := cl.Read("w.dat")
	if err != nil {
		t.Fatal(err)
	}
	if fromBuffer {
		t.Fatal("flushed file still served from buffer")
	}
	if !bytes.Equal(got, content) {
		t.Fatal("flushed striped content mismatch")
	}
}

func TestSmallFilesNotStriped(t *testing.T) {
	cl, _, nodes := testCluster(t, 1, func(c *NodeConfig) { c.StripeChunkBytes = 10000 })
	if err := cl.Create("small.dat", []byte("tiny")); err != nil {
		t.Fatal(err)
	}
	if _, _, err := cl.Read("small.dat"); err != nil {
		t.Fatal(err)
	}
	stats := nodes[0].statsResp()
	serviced := 0
	for _, ds := range stats.Disks {
		if ds.Name != "buffer" && ds.Requests > 0 {
			serviced++
		}
	}
	if serviced != 1 {
		t.Fatalf("small file touched %d data disks, want 1", serviced)
	}
}

func TestNodeRestartKeepsFiles(t *testing.T) {
	quiet := log.New(io.Discard, "", 0)
	root := t.TempDir()
	state := root + "/server-state.json"
	nodeCfg := NodeConfig{
		Addr: "127.0.0.1:0", RootDir: root + "/n0", DataDisks: 2,
		DataModel: disk.ModelType1, BufferModel: disk.ModelType1,
		IdleThresholdSec: 5, TimeScale: 2000, InjectLatency: true, Logger: quiet,
	}
	node, err := StartNode(nodeCfg)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := StartServer(ServerConfig{
		Addr: "127.0.0.1:0", NodeAddrs: []string{node.Addr()},
		StateFile: state, Logger: quiet,
	})
	if err != nil {
		t.Fatal(err)
	}
	cl, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Create("persist.dat", []byte("survives restarts")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, _, err := cl.Read("persist.dat"); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := cl.Prefetch(1); err != nil {
		t.Fatal(err)
	}

	// Full restart of node and server (node must come back on the same
	// address for the persisted server state to resolve).
	nodeAddr := node.Addr()
	cl.Close()
	srv.Close()
	node.Close()

	nodeCfg.Addr = nodeAddr
	node2, err := StartNode(nodeCfg)
	if err != nil {
		t.Fatal(err)
	}
	defer node2.Close()
	srv2, err := StartServer(ServerConfig{
		Addr: "127.0.0.1:0", NodeAddrs: []string{node2.Addr()},
		StateFile: state, Logger: quiet,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	cl2, err := Dial(srv2.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl2.Close()

	got, fromBuffer, err := cl2.Read("persist.dat")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "survives restarts" {
		t.Fatalf("restarted read = %q", got)
	}
	if !fromBuffer {
		t.Fatal("prefetch flag lost across node restart")
	}
	// The namespace survived too.
	names, err := cl2.List()
	if err != nil || len(names) != 1 || names[0] != "persist.dat" {
		t.Fatalf("List after restart = %v, %v", names, err)
	}
	// New creates continue from the persisted id/node cursors.
	if err := cl2.Create("after-restart.dat", []byte("x")); err != nil {
		t.Fatal(err)
	}
}

func TestNodeRejectsCorruptManifest(t *testing.T) {
	quiet := log.New(io.Discard, "", 0)
	root := t.TempDir()
	if err := os.WriteFile(root+"/manifest.json", []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := StartNode(NodeConfig{
		Addr: "127.0.0.1:0", RootDir: root, DataDisks: 1,
		DataModel: disk.ModelType1, BufferModel: disk.ModelType1, Logger: quiet,
	})
	if err == nil {
		t.Fatal("corrupt manifest accepted")
	}
}

func TestNodeRejectsManifestDiskOverflow(t *testing.T) {
	quiet := log.New(io.Discard, "", 0)
	root := t.TempDir()
	manifest := `{"version":1,"next_disk":0,"files":[{"id":0,"size":10,"disk":5}]}`
	if err := os.WriteFile(root+"/manifest.json", []byte(manifest), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := StartNode(NodeConfig{
		Addr: "127.0.0.1:0", RootDir: root, DataDisks: 1,
		DataModel: disk.ModelType1, BufferModel: disk.ModelType1, Logger: quiet,
	})
	if err == nil {
		t.Fatal("manifest referencing missing disk accepted")
	}
}

func TestServerRejectsCorruptState(t *testing.T) {
	quiet := log.New(io.Discard, "", 0)
	state := t.TempDir() + "/state.json"
	if err := os.WriteFile(state, []byte("][,"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := StartServer(ServerConfig{
		Addr: "127.0.0.1:0", NodeAddrs: []string{"127.0.0.1:1"},
		StateFile: state, Logger: quiet,
	})
	if err == nil {
		t.Fatal("corrupt state accepted")
	}
}

func TestReadAtWholeFile(t *testing.T) {
	cl, _, _ := testCluster(t, 1, nil)
	content := []byte("0123456789abcdef")
	if err := cl.Create("r.dat", content); err != nil {
		t.Fatal(err)
	}
	got, fromBuffer, err := cl.ReadAt("r.dat", 4, 6)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "456789" || fromBuffer {
		t.Fatalf("ReadAt = %q buffer=%v", got, fromBuffer)
	}
	// Zero-length range is legal and returns nothing.
	got, _, err = cl.ReadAt("r.dat", 3, 0)
	if err != nil || len(got) != 0 {
		t.Fatalf("zero-length ReadAt = %q, %v", got, err)
	}
}

func TestReadAtOutOfRange(t *testing.T) {
	cl, _, _ := testCluster(t, 1, nil)
	if err := cl.Create("r.dat", []byte("short")); err != nil {
		t.Fatal(err)
	}
	for _, rng := range [][2]int64{{-1, 2}, {0, 100}, {4, 2}, {0, -1}} {
		if _, _, err := cl.ReadAt("r.dat", rng[0], rng[1]); err == nil {
			t.Errorf("range [%d,+%d) accepted", rng[0], rng[1])
		}
	}
}

func TestReadAtStriped(t *testing.T) {
	cl, _, _ := testCluster(t, 1, func(c *NodeConfig) { c.StripeChunkBytes = 1000 })
	content := make([]byte, 3500)
	for i := range content {
		content[i] = byte(i % 251)
	}
	if err := cl.Create("s.dat", content); err != nil {
		t.Fatal(err)
	}
	// A range crossing two chunk boundaries.
	got, _, err := cl.ReadAt("s.dat", 900, 1200)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, content[900:2100]) {
		t.Fatal("striped ranged read mismatch")
	}
	// A range entirely inside the last (short) chunk.
	got, _, err = cl.ReadAt("s.dat", 3200, 300)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, content[3200:3500]) {
		t.Fatal("tail-chunk ranged read mismatch")
	}
}

func TestReadAtPrefetchedServesFromBuffer(t *testing.T) {
	cl, _, _ := testCluster(t, 1, nil)
	content := bytes.Repeat([]byte("xy"), 500)
	if err := cl.Create("h.dat", content); err != nil {
		t.Fatal(err)
	}
	if _, _, err := cl.Read("h.dat"); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Prefetch(1); err != nil {
		t.Fatal(err)
	}
	got, fromBuffer, err := cl.ReadAt("h.dat", 10, 20)
	if err != nil {
		t.Fatal(err)
	}
	if !fromBuffer {
		t.Fatal("prefetched ranged read missed the buffer")
	}
	if !bytes.Equal(got, content[10:30]) {
		t.Fatal("buffer ranged read mismatch")
	}
}

func TestHintsDrivePredictiveSleep(t *testing.T) {
	// Threshold is 60 model seconds (30 ms real at scale 2000): far too
	// long for the reactive timer to fire within this test. With hints
	// predicting a long idle window, the disk must sleep almost
	// immediately after its last request anyway.
	cl, _, nodes := testCluster(t, 1, func(c *NodeConfig) { c.IdleThresholdSec = 60 })
	if err := cl.Create("hinted.dat", []byte("hot file")); err != nil {
		t.Fatal(err)
	}
	// Two spaced reads give the server a measurable inter-arrival.
	if _, _, err := cl.Read("hinted.dat"); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond) // 40 model seconds apart
	if _, _, err := cl.Read("hinted.dat"); err != nil {
		t.Fatal(err)
	}
	// Prefetch pushes the hints (process-flow step 4) and moves the hot
	// file to the buffer disk, so its data disk faces an unbounded
	// predicted window.
	if _, err := cl.Prefetch(1); err != nil {
		t.Fatal(err)
	}
	// One more read to retrigger the power-management decision on the
	// data disk would defeat the point (it hits the buffer); instead the
	// hint-driven timer armed at the last data-disk service fires on the
	// prediction... but that service predates the hints. Trigger one
	// buffer-missing access on the same disk via a second file.
	if err := cl.Create("cold.dat", []byte("cold")); err != nil {
		t.Fatal(err)
	}
	if _, _, err := cl.Read("cold.dat"); err != nil {
		t.Fatal(err)
	}

	// cold.dat has no hint (single access), so its disk uses the 60 s
	// threshold; hinted.dat's disk should stand by long before that.
	deadline := time.Now().Add(1 * time.Second)
	for {
		stats, err := cl.Stats()
		if err != nil {
			t.Fatal(err)
		}
		standby := 0
		for _, ds := range stats.Disks {
			if ds.State == "standby" {
				standby++
			}
		}
		if standby >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("hinted disk never slept; stats: %+v", stats.Disks)
		}
		time.Sleep(2 * time.Millisecond)
	}
	_ = nodes
}

func TestHintsClearedByNonPositiveInterval(t *testing.T) {
	quiet := log.New(io.Discard, "", 0)
	node, err := StartNode(NodeConfig{
		Addr: "127.0.0.1:0", RootDir: t.TempDir(), DataDisks: 1,
		DataModel: disk.ModelType1, BufferModel: disk.ModelType1,
		TimeScale: 1000, Logger: quiet,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	node.handleHints(proto.NodeHintsReq{Hints: []proto.FileHint{
		{FileID: 1, MeanIntervalSec: 2},
	}})
	node.mu.Lock()
	v, ok := node.hints[1]
	node.mu.Unlock()
	if !ok || v != 2000 { // scaled by TimeScale
		t.Fatalf("hint = %v, %v; want 2000 (scaled)", v, ok)
	}
	node.handleHints(proto.NodeHintsReq{Hints: []proto.FileHint{
		{FileID: 1, MeanIntervalSec: 0},
	}})
	node.mu.Lock()
	_, ok = node.hints[1]
	node.mu.Unlock()
	if ok {
		t.Fatal("zero-interval hint not cleared")
	}
}

func TestNodeBufferCapacityLimitsPrefetch(t *testing.T) {
	cl, _, _ := testCluster(t, 1, func(c *NodeConfig) { c.BufferCapacityBytes = 1500 })
	big := bytes.Repeat([]byte("b"), 1000)
	if err := cl.Create("a.dat", big); err != nil {
		t.Fatal(err)
	}
	if err := cl.Create("b.dat", big); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, _, err := cl.Read("a.dat"); err != nil {
			t.Fatal(err)
		}
		if _, _, err := cl.Read("b.dat"); err != nil {
			t.Fatal(err)
		}
	}
	n, err := cl.Prefetch(2)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("prefetched %d files, want 1 (capacity 1500 fits one 1000 B file)", n)
	}
}

func TestNodeBufferCapacityLimitsWriteBuffer(t *testing.T) {
	cl, _, _ := testCluster(t, 1, func(c *NodeConfig) {
		c.WriteBuffer = true
		c.BufferCapacityBytes = 100
	})
	if err := cl.Create("w.dat", []byte("x")); err != nil { // 1 B, buffered
		t.Fatal(err)
	}
	// A write that exceeds the remaining capacity goes straight to the
	// data disk instead.
	buffered, err := cl.Write("w.dat", bytes.Repeat([]byte("y"), 200))
	if err != nil {
		t.Fatal(err)
	}
	if buffered {
		t.Fatal("oversized write absorbed by a full buffer")
	}
	got, _, err := cl.Read("w.dat")
	if err != nil || len(got) != 200 {
		t.Fatalf("read after write-through: %d bytes, %v", len(got), err)
	}
}

func TestDirectWriteInvalidatesPrefetchedCopy(t *testing.T) {
	// Without the write buffer, a write to a prefetched file must not
	// leave the stale buffer replica serving reads.
	cl, _, _ := testCluster(t, 1, nil)
	if err := cl.Create("p.dat", []byte("old-content")); err != nil {
		t.Fatal(err)
	}
	if _, _, err := cl.Read("p.dat"); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Prefetch(1); err != nil {
		t.Fatal(err)
	}
	if _, fromBuffer, _ := cl.Read("p.dat"); !fromBuffer {
		t.Fatal("precondition: file not prefetched")
	}
	if _, err := cl.Write("p.dat", []byte("new-content")); err != nil {
		t.Fatal(err)
	}
	got, fromBuffer, err := cl.Read("p.dat")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "new-content" {
		t.Fatalf("read %q after overwrite", got)
	}
	if fromBuffer {
		t.Fatal("stale buffer copy still serving after direct write")
	}
}

func TestPrefetchOfDirtyFileFlushesFirst(t *testing.T) {
	cl, _, _ := testCluster(t, 1, func(c *NodeConfig) { c.WriteBuffer = true })
	content := bytes.Repeat([]byte("d"), 800)
	if err := cl.Create("dirty.dat", content); err != nil { // buffered, dirty
		t.Fatal(err)
	}
	if _, _, err := cl.Read("dirty.dat"); err != nil {
		t.Fatal(err)
	}
	n, err := cl.Prefetch(1)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("prefetched %d, want 1 (dirty file must flush then prefetch)", n)
	}
	got, fromBuffer, err := cl.Read("dirty.dat")
	if err != nil {
		t.Fatal(err)
	}
	if !fromBuffer || !bytes.Equal(got, content) {
		t.Fatalf("post-prefetch read: buffer=%v, %d bytes", fromBuffer, len(got))
	}
}
