// The node's streaming data plane (DESIGN.md §19): large files move as
// chunked TDataFrames through one pooled buffer per stream instead of a
// whole-payload response, so a 64 MB read costs O(chunk) node memory.
// Disk latency and energy are charged through the same modeled-disk
// path as the RPC handlers — a streamed read of a sleeping spindle still
// pays (and attributes) the spin-up.
package fs

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"eevfs/internal/metadata"
	"eevfs/internal/proto"
	"eevfs/internal/telemetry"
)

// dispatchStream serves one opened stream end to end. Every exit path
// sends a terminal frame: sendEnd on success (inside the handlers),
// sendAbort carrying the typed error otherwise — the client side relies
// on that terminal frame to retire early-closed stream ids.
func (n *Node) dispatchStream(t proto.Type, payload []byte, sc telemetry.SpanContext, st *srvStream) {
	start := time.Now()
	sp := n.cfg.Tracer.StartRemote(sc, "node", "node."+opName(t))
	req, err := proto.DecodeStreamOpenReq(payload)
	if err == nil {
		switch t {
		case proto.TStreamReadReq:
			err = n.handleStreamRead(req, sp, st)
		case proto.TStreamWriteReq:
			err = n.handleStreamWrite(req, sp, st)
		default:
			err = fmt.Errorf("fs: node got unexpected stream open type %d", t)
		}
	}
	if err != nil {
		st.sendAbort(err)
	}
	n.met.observe(t, time.Since(start), err)
	sp.End(err)
}

// streamSeg is one on-disk extent of a streamed file: the disk it lives
// on (for latency/energy charging), its path, and its length.
type streamSeg struct {
	nd   *nodeDisk
	path string
	size int64
}

// chargeDisk runs the modeled-disk accounting for size bytes on nd —
// wake a sleeping spindle, charge service time, attribute the energy —
// without performing the file I/O itself (the stream loop does that
// incrementally). op names the disk-level child span.
func (n *Node) chargeDisk(nd *nodeDisk, size int64, sequential bool, ra reqAttrib, op string) {
	sp := ra.span.Child(op)
	sp.Annotate("disk", nd.label)
	defer sp.Finish()
	nd.mu.Lock()
	defer nd.mu.Unlock()
	nd.beginWork(ra, sp)
	defer nd.endWork()
	n.wakeLocked(nd, sp)
	n.serviceLocked(nd, size, sequential)
}

// dataSegs lists the data-disk extents of entry in byte order: the whole
// file on its primary disk, or the stripe chunks round-robined across
// the spindles.
func (n *Node) dataSegs(entry metadata.NodeEntry) []streamSeg {
	spans := n.stripeSpans(entry.Size)
	if len(spans) == 1 {
		nd := n.data[entry.Disk]
		return []streamSeg{{nd: nd, path: filepath.Join(nd.dir, fileName(int64(entry.ID))), size: entry.Size}}
	}
	segs := make([]streamSeg, len(spans))
	for i, span := range spans {
		nd := n.data[(entry.Disk+i)%len(n.data)]
		segs[i] = streamSeg{nd: nd, path: filepath.Join(nd.dir, chunkName(int64(entry.ID), i)), size: span}
	}
	return segs
}

// handleStreamRead streams one file to the peer: open response first,
// then data chunks under the peer-granted credit window, then a clean
// end. One pooled chunk buffer is resident per stream regardless of file
// size.
func (n *Node) handleStreamRead(req proto.StreamOpenReq, sp *telemetry.Span, st *srvStream) error {
	entry, ok := n.meta.Lookup(int(req.FileID))
	if !ok {
		return fmt.Errorf("fs: read of unknown file %d", req.FileID)
	}
	n.noteAccess(int(req.FileID))
	ra := spanAttrib(sp, req.FileID)

	n.mu.Lock()
	_, isDirty := n.dirty[int(req.FileID)]
	n.mu.Unlock()

	// Source selection mirrors handleRead: the buffer disk when it holds
	// the newest copy (prefetched replica or unflushed buffered write),
	// the data disks otherwise — including fallback on buffer damage.
	var segs []streamSeg
	fromBuffer := false
	if entry.Prefetched || isDirty {
		path := filepath.Join(n.buffer.dir, fileName(int64(entry.ID)))
		if _, err := os.Stat(path); err == nil {
			segs = []streamSeg{{nd: n.buffer, path: path, size: entry.Size}}
			fromBuffer = true
		} else {
			n.logger.Printf("buffer stream of file %d failed, falling back: %v", req.FileID, err)
		}
	}
	if segs == nil {
		segs = n.dataSegs(entry)
	}
	if fromBuffer {
		n.mu.Lock()
		n.hits++
		n.mu.Unlock()
		n.hitsC.Inc()
	} else {
		n.mu.Lock()
		n.misses++
		n.mu.Unlock()
		n.missesC.Inc()
	}

	// Charge the modeled disks up front (spin-up + full service time, as
	// the RPC read does), then move the bytes at wire speed.
	for _, seg := range segs {
		n.chargeDisk(seg.nd, seg.size, false, ra, "disk.stream.read")
	}

	chunk := proto.NegotiateChunk(req.ChunkSize, n.cfg.StreamChunkBytes)
	window := proto.ClampStreamWindow(req.Window)
	st.grantCredits(window)
	resp := proto.StreamOpenResp{
		FromBuffer: fromBuffer,
		Size:       entry.Size,
		ChunkSize:  uint32(chunk),
		Window:     uint32(window),
	}
	if err := st.sendFrame(proto.TStreamOpenResp, resp.Encode()); err != nil {
		return err
	}

	buf := proto.GetChunk(chunk)
	defer proto.PutChunk(buf)
	sent := int64(0)
	for _, seg := range segs {
		f, err := os.Open(seg.path)
		if err != nil {
			return err
		}
		remaining := seg.size
		for remaining > 0 {
			m := int64(chunk)
			if remaining < m {
				m = remaining
			}
			if _, err := io.ReadFull(f, buf[:m]); err != nil {
				f.Close()
				return fmt.Errorf("fs: file %d truncated on disk: %w", req.FileID, err)
			}
			if err := st.sendData(buf[:m], proto.StreamStallTimeout(n.cfg.WriteTimeout)); err != nil {
				f.Close()
				return err
			}
			remaining -= m
			sent += m
			n.streamChunksC.Inc()
			n.streamBytesC.Add(m)
		}
		f.Close()
	}
	sp.Annotate("stream.bytes", fmt.Sprint(sent))
	return st.sendEnd(false)
}

// segWriter lands an inbound byte stream across the on-disk extents of a
// file, writing each as a ".part" sibling that commit renames into
// place — an aborted stream never leaves a half-written visible file.
type segWriter struct {
	segs []streamSeg
	idx  int
	f    *os.File
	rem  int64 // bytes left in the current segment
}

func newSegWriter(segs []streamSeg) *segWriter { return &segWriter{segs: segs} }

// write lands b, splitting across segment boundaries as needed.
func (w *segWriter) write(b []byte) error {
	for len(b) > 0 {
		if w.f == nil {
			if w.idx >= len(w.segs) {
				return fmt.Errorf("fs: stream write overruns declared size")
			}
			f, err := os.Create(w.segs[w.idx].path + ".part")
			if err != nil {
				return err
			}
			w.f, w.rem = f, w.segs[w.idx].size
		}
		m := int64(len(b))
		if m > w.rem {
			m = w.rem
		}
		if _, err := w.f.Write(b[:m]); err != nil {
			return err
		}
		b = b[m:]
		w.rem -= m
		if w.rem == 0 {
			err := w.f.Close()
			w.f = nil
			w.idx++
			if err != nil {
				return err
			}
		}
	}
	return nil
}

// commit renames every completed ".part" file into place.
func (w *segWriter) commit() error {
	if w.f != nil || w.idx != len(w.segs) {
		return fmt.Errorf("fs: stream write ended short of declared size")
	}
	for _, seg := range w.segs {
		if err := os.Rename(seg.path+".part", seg.path); err != nil {
			return err
		}
	}
	return nil
}

// abandon discards all partial state.
func (w *segWriter) abandon() {
	if w.f != nil {
		w.f.Close()
		w.f = nil
	}
	for _, seg := range w.segs {
		os.Remove(seg.path + ".part")
	}
}

// handleStreamWrite receives one file from the peer under a node-granted
// credit window and commits it with the same placement and metadata
// semantics as the RPC write path (write-buffer absorption, stale-mirror
// invalidation, size updates).
func (n *Node) handleStreamWrite(req proto.StreamOpenReq, sp *telemetry.Span, st *srvStream) error {
	if req.Size <= 0 {
		return fmt.Errorf("fs: stream write of file %d with size %d", req.FileID, req.Size)
	}
	entry, ok := n.meta.Lookup(int(req.FileID))
	if !ok {
		return fmt.Errorf("fs: write to unknown file %d", req.FileID)
	}
	n.noteAccess(int(req.FileID))
	ra := spanAttrib(sp, req.FileID)
	name := fileName(req.FileID)

	buffered := n.cfg.WriteBuffer && n.bufferHasRoom(req.Size)
	var segs []streamSeg
	if buffered {
		segs = []streamSeg{{nd: n.buffer, path: filepath.Join(n.buffer.dir, name), size: req.Size}}
	} else {
		// Placement must match what a later readDataFile will look for:
		// recompute the extents at the incoming size.
		sized := entry
		sized.Size = req.Size
		segs = n.dataSegs(sized)
	}
	for _, seg := range segs {
		n.chargeDisk(seg.nd, seg.size, seg.nd.isBuffer, ra, "disk.stream.write")
	}

	chunk := proto.NegotiateChunk(req.ChunkSize, n.cfg.StreamChunkBytes)
	window := proto.ClampStreamWindow(req.Window)
	resp := proto.StreamOpenResp{
		FromBuffer: buffered,
		Size:       req.Size,
		ChunkSize:  uint32(chunk),
		Window:     uint32(window),
	}
	if err := st.sendFrame(proto.TStreamOpenResp, resp.Encode()); err != nil {
		return err
	}

	w := newSegWriter(segs)
	received := int64(0)
	sinceCredit := 0
	for {
		msg, err := st.recvMsg(proto.StreamStallTimeout(n.cfg.WriteTimeout))
		if err != nil {
			w.abandon()
			return err
		}
		switch msg.t {
		case proto.TDataFrame:
			m := int64(len(msg.payload))
			if received+m > req.Size {
				proto.PutChunk(msg.payload)
				w.abandon()
				return fmt.Errorf("fs: stream write of file %d overran declared size %d", req.FileID, req.Size)
			}
			werr := w.write(msg.payload)
			proto.PutChunk(msg.payload)
			if werr != nil {
				w.abandon()
				return werr
			}
			received += m
			n.streamChunksC.Inc()
			n.streamBytesC.Add(m)
			// Replenish the sender's window as chunks are consumed.
			sinceCredit++
			if sinceCredit >= window/2 || sinceCredit >= window {
				if err := st.sendFrame(proto.TStreamCredit, proto.StreamCredit{N: uint32(sinceCredit)}.Encode()); err != nil {
					w.abandon()
					return err
				}
				sinceCredit = 0
			}
		case proto.TStreamEnd:
			if received != req.Size {
				w.abandon()
				return fmt.Errorf("fs: stream write of file %d ended at %d of %d bytes",
					req.FileID, received, req.Size)
			}
			if err := w.commit(); err != nil {
				w.abandon()
				return err
			}
			n.commitStreamWrite(entry, req, buffered, name)
			sp.Annotate("stream.bytes", fmt.Sprint(received))
			return st.sendEnd(buffered)
		case proto.TStreamAbort:
			w.abandon()
			return decodeStreamAbort(msg.payload)
		default:
			w.abandon()
			st.conn.Close()
			return fmt.Errorf("fs: unexpected frame type %d on write stream", msg.t)
		}
	}
}

// commitStreamWrite applies the RPC write path's metadata transitions to
// a committed streamed write.
func (n *Node) commitStreamWrite(entry metadata.NodeEntry, req proto.StreamOpenReq, buffered bool, name string) {
	if buffered {
		n.mu.Lock()
		n.dirty[int(req.FileID)] = req.Size
		n.bufWrites++
		n.mu.Unlock()
		n.bufWritesC.Inc()
		n.updateSize(entry, int(req.Size))
		n.saveManifest()
		return
	}
	// A direct write supersedes any buffer-disk copy: drop stale
	// prefetched replicas and unflushed log entries so reads cannot see
	// old content.
	n.mu.Lock()
	_, wasDirty := n.dirty[int(req.FileID)]
	delete(n.dirty, int(req.FileID))
	n.mu.Unlock()
	if entry.Prefetched || wasDirty {
		n.meta.SetPrefetched(int(req.FileID), false)
		os.Remove(filepath.Join(n.buffer.dir, name))
		n.saveManifest()
	}
	n.updateSize(entry, int(req.Size))
}
