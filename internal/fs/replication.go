package fs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"eevfs/internal/metadata"
	"eevfs/internal/proto"
	"eevfs/internal/telemetry"
	"eevfs/internal/trace"
)

// Replication plane: a configured group of metadata servers elects one
// primary; the primary applies every metadata mutation locally, assigns
// it a dense sequence number, and streams it to the followers as an
// ordered op log over the same v2 mux the clients speak. A follower that
// reports a log gap (or that just joined) is resynced with a full
// snapshot. Followers reject client operations with a typed not-primary
// error carrying a redirect, watch the primary with status probes, and
// on its death elect the follower with the highest applied sequence
// (ties broken by lowest peer index), which then bumps the epoch,
// re-registers the storage nodes with a probe round, and starts serving.
//
// The model is crash-stop with epoch fencing on the replication path: a
// resurrected stale primary is demoted the moment it exchanges frames
// with the newer epoch, but there is no quorum — an acked mutation
// survives a primary crash iff at least one in-sync follower survives.
// That is the availability contract the failover test battery checks;
// it is deliberately not a consensus protocol.

// Rejection messages exchanged between servers. Matched by substring on
// the receiving side (both ends live in this package).
const (
	repMsgStaleEpoch = "replication: stale epoch"
	repMsgGap        = "replication: log gap"
)

// peerHandle is this server's view of one other group member.
type peerHandle struct {
	idx   int
	addr  string
	ep    *proto.Endpoint // replication traffic (appends, snapshots)
	probe *proto.Endpoint // status probes: single attempt, no retries

	// synced and acked are owned by the repMu holder and the fan-out
	// goroutines it spawns (one per peer, disjoint).
	synced bool
	acked  uint64
}

// initReplication wires the peer handles and decides the initial role.
// Called from StartServer before the listener starts accepting.
func (s *Server) initReplication() error {
	if len(s.cfg.Peers) == 0 {
		// Standalone: the server is trivially primary forever.
		s.primary.Store(true)
		s.roleG.Set(1)
		return nil
	}
	if s.cfg.Self < 0 || s.cfg.Self >= len(s.cfg.Peers) {
		return fmt.Errorf("fs: self index %d outside peer list of %d", s.cfg.Self, len(s.cfg.Peers))
	}
	s.peers = make([]*peerHandle, len(s.cfg.Peers))
	for i, addr := range s.cfg.Peers {
		if i == s.cfg.Self {
			continue
		}
		tc := s.cfg.Transport
		tc.Seed = s.cfg.Transport.Seed + int64(i) + 101 // decorrelate from node jitter
		tc.Metrics = s.cfg.Metrics
		probeCfg := tc
		probeCfg.Retries = -1
		probeCfg.Metrics = nil
		s.peers[i] = &peerHandle{
			idx:   i,
			addr:  addr,
			ep:    proto.NewEndpoint(addr, s.cfg.Dialer, tc),
			probe: proto.NewEndpoint(addr, s.cfg.Dialer, probeCfg),
		}
	}
	if s.epoch.Load() == 0 {
		s.epoch.Store(1) // loadState may already have restored a later epoch
	}

	// Discovery: if some peer already claims primary (we are restarting
	// into a running group), follow it; otherwise index 0 boots as
	// primary and everyone else watches it.
	if st, idx, ok := s.findPrimary(); ok {
		s.adoptEpoch(st.Epoch)
		s.primaryIdx.Store(int64(idx))
		s.logger.Printf("replication: joining as follower of %s (epoch %d)", s.cfg.Peers[idx], st.Epoch)
	} else if s.cfg.Self == 0 {
		s.primary.Store(true)
		s.primaryIdx.Store(0)
		s.roleG.Set(1)
		s.logger.Printf("replication: starting as primary (epoch %d)", s.epoch.Load())
	} else {
		s.primaryIdx.Store(0)
		s.logger.Printf("replication: starting as follower of %s", s.cfg.Peers[0])
	}
	return nil
}

// adoptEpoch raises the local epoch to at least e.
func (s *Server) adoptEpoch(e uint64) {
	for {
		cur := s.epoch.Load()
		if e <= cur || s.epoch.CompareAndSwap(cur, e) {
			return
		}
	}
}

// findPrimary probes every peer once and returns the highest-epoch
// primary claimer, if any.
func (s *Server) findPrimary() (proto.RepStatusResp, int, bool) {
	sts := s.probePeers()
	best, bestIdx, found := proto.RepStatusResp{}, 0, false
	for idx, st := range sts {
		if st != nil && st.Primary && (!found || st.Epoch > best.Epoch) {
			best, bestIdx, found = *st, idx, true
		}
	}
	return best, bestIdx, found
}

// probePeers issues one concurrent status probe per peer; nil entries
// are unreachable peers (or self).
func (s *Server) probePeers() []*proto.RepStatusResp {
	out := make([]*proto.RepStatusResp, len(s.peers))
	var wg sync.WaitGroup
	for i, p := range s.peers {
		if p == nil {
			continue
		}
		wg.Add(1)
		go func(i int, p *peerHandle) {
			defer wg.Done()
			_, payload, err := p.probe.Call(proto.TRepStatusReq, nil)
			if err != nil {
				return
			}
			if st, derr := proto.DecodeRepStatusResp(payload); derr == nil {
				out[i] = &st
			}
		}(i, p)
	}
	wg.Wait()
	return out
}

// isPrimary reports whether this server currently accepts client
// mutations. Standalone servers always do.
func (s *Server) isPrimary() bool { return s.primary.Load() }

// notPrimaryErr builds the typed rejection a follower returns to
// clients, with the best redirect hint it has.
func (s *Server) notPrimaryErr() error {
	idx := int(s.primaryIdx.Load())
	if idx == s.cfg.Self || idx < 0 || idx >= len(s.cfg.Peers) {
		return &notPrimaryError{}
	}
	return &notPrimaryError{primary: s.cfg.Peers[idx]}
}

// commit sequences one already-applied mutation into the op log,
// replicates it synchronously to the followers, and persists. Standalone
// servers just persist. The caller has already applied the mutation to
// local state; followers converge through replication or snapshot
// resync. Holding repMu across the fan-out is what makes the log
// ordered: no second mutation can be sequenced until the fan-out (which
// is bounded by the transport timeouts) resolves.
func (s *Server) commit(op proto.RepOp, sp *telemetry.Span) {
	if len(s.peers) > 0 {
		s.repMu.Lock()
		s.repSeq++
		op.Seq = s.repSeq
		s.repSeqA.Store(s.repSeq)
		s.replicateLocked([]proto.RepOp{op}, sp.Context())
		s.repMu.Unlock()
	}
	s.saveState()
}

// replicateLocked fans a batch out to every peer. Callers hold repMu.
// A peer that is marked out of sync — or that reports a gap — gets a
// full snapshot instead; a peer that cannot be reached is marked out of
// sync and repaired by the next primaryDuties tick. sc, when nonzero,
// parents a per-peer replication span so synchronous append latency
// shows up inside the mutation's trace.
func (s *Server) replicateLocked(ops []proto.RepOp, sc telemetry.SpanContext) {
	if n := s.cfg.ReplChaosSilentAfter; n > 0 && s.repSeq > uint64(n) {
		// Test-only convergence-bug injection: the primary silently stops
		// replicating but keeps acking clients, so a failover after this
		// point must lose acked mutations and trip the convergence oracle.
		return
	}
	req := proto.RepAppendReq{Epoch: s.epoch.Load(), From: int64(s.cfg.Self), Ops: ops}
	payload := req.Encode()
	var snap []byte // built at most once, only if some peer needs it
	buildSnap := func() []byte {
		if snap == nil {
			snap = s.snapshotLocked().Encode()
		}
		return snap
	}
	var wg sync.WaitGroup
	for _, p := range s.peers {
		if p == nil {
			continue
		}
		if !p.synced {
			// Repaired by snapshot, not by this append; build the bytes
			// now (cheap, local) so the goroutine only does network IO.
			buildSnap()
		}
		wg.Add(1)
		go func(p *peerHandle) {
			defer wg.Done()
			if !p.synced {
				s.sendSnapshot(p, snap)
				return
			}
			psp := s.cfg.Tracer.StartChild(sc, "server", "repl.append.peer")
			psp.Annotate("peer", p.addr)
			_, resp, err := p.ep.CallCtx(proto.TRepAppendReq, payload, psp.Context())
			psp.End(err)
			if err == nil {
				if ack, derr := proto.DecodeRepAppendResp(resp); derr == nil {
					p.acked = ack.LastSeq
					return
				}
				p.synced = false
				return
			}
			if s.checkDemotion(err) {
				return
			}
			p.synced = false // gap or transport fault: snapshot next tick
		}(p)
	}
	wg.Wait()
	s.updateLagLocked()
}

// sendSnapshot installs the primary's full state on one peer; on
// success the peer is in sync at the snapshot's seq.
func (s *Server) sendSnapshot(p *peerHandle, snap []byte) {
	_, _, err := p.ep.Call(proto.TRepSnapshotReq, snap)
	if err != nil {
		s.checkDemotion(err)
		return
	}
	p.synced = true
	p.acked = s.repSeq
}

// checkDemotion inspects a replication error from a peer: a stale-epoch
// rejection means a newer primary exists, so this server steps down and
// forces an election on its next watch tick. Returns true when demoted.
func (s *Server) checkDemotion(err error) bool {
	if !isRemoteErr(err) || !strings.Contains(err.Error(), repMsgStaleEpoch) {
		return false
	}
	if s.primary.CompareAndSwap(true, false) {
		s.roleG.Set(0)
		s.forceElect.Store(true)
		s.logger.Printf("replication: demoted by a newer epoch")
	}
	return true
}

// updateLagLocked refreshes the replication-lag gauge: how many ops the
// slowest in-sync follower is behind the primary. Out-of-sync peers are
// reported as fully lagging.
func (s *Server) updateLagLocked() {
	var worst uint64
	for _, p := range s.peers {
		if p == nil {
			continue
		}
		lag := s.repSeq
		if p.synced && p.acked <= s.repSeq {
			lag = s.repSeq - p.acked
		}
		if lag > worst {
			worst = lag
		}
	}
	s.replLag.Set(float64(worst))
}

// snapshotLocked captures the full replicated state. Callers hold repMu
// (or otherwise exclude concurrent applies). Files sort by name and
// accesses by journal order, so two replicas in the same state produce
// byte-identical snapshots — the determinism tests rely on it.
func (s *Server) snapshotLocked() proto.RepSnapshot {
	snap := proto.RepSnapshot{
		Epoch:    s.epoch.Load(),
		Seq:      s.repSeq,
		From:     int64(s.cfg.Self),
		NextID:   s.nextID.Load(),
		NextNode: s.nextNode.Load(),
	}
	names := s.meta.Names() // already sorted
	for _, name := range names {
		if fi, ok := s.meta.LookupName(name); ok {
			snap.Files = append(snap.Files, proto.RepFile{
				Name: fi.Name, ID: int64(fi.ID), Size: fi.Size,
				Node: int64(fi.Node), Replica: int64(fi.Replica),
			})
		}
	}
	recs := s.accesses.Snapshot()
	sort.Slice(recs, func(i, j int) bool { return recs[i].Seq < recs[j].Seq })
	for _, r := range recs {
		snap.Accesses = append(snap.Accesses, proto.RepAccess{
			FileID: int64(r.FileID), TimeS: r.TimeS, Size: r.Size,
		})
	}
	return snap
}

// applyOpLocked applies one replicated op to local state on a follower.
// Callers hold repMu. Apply failures are returned to the primary, which
// falls back to a snapshot.
func (s *Server) applyOpLocked(op proto.RepOp) error {
	switch op.Kind {
	case proto.RepOpCreate:
		if op.ID+1 > s.nextID.Load() {
			s.nextID.Store(op.ID + 1)
		}
		if op.Cursor > s.nextNode.Load() {
			s.nextNode.Store(op.Cursor)
		}
		s.sizes.set(op.ID, op.Size)
		return s.meta.Put(metadata.FileInfo{
			Name: op.Name, ID: int(op.ID), Size: op.Size,
			Node: int(op.Node), Replica: int(op.Replica),
		})
	case proto.RepOpDelete:
		s.meta.Delete(op.Name)
		return nil
	case proto.RepOpAccess:
		for _, r := range op.Records {
			s.recordAccess(int(r.FileID), r.TimeS, r.Size)
		}
		s.accessMark = int64(s.accesses.Len())
		return nil
	case proto.RepOpReplica:
		fi, ok := s.meta.LookupName(op.Name)
		if !ok {
			return nil // deleted concurrently on the primary; a later op removes it here too
		}
		fi.Replica = int(op.Replica)
		return s.meta.Put(fi)
	default:
		return fmt.Errorf("replication: unknown op kind %d", op.Kind)
	}
}

// handleRepAppend is the follower side of the op log: epoch fencing,
// idempotent duplicates, ordered applies, and loud gaps.
func (s *Server) handleRepAppend(req proto.RepAppendReq) (proto.RepAppendResp, error) {
	if len(s.peers) == 0 {
		return proto.RepAppendResp{}, fmt.Errorf("replication: server is not part of a group")
	}
	s.repMu.Lock()
	defer s.repMu.Unlock()
	if err := s.fenceLocked(req.Epoch, req.From); err != nil {
		return proto.RepAppendResp{LastSeq: s.repSeq}, err
	}
	for _, op := range req.Ops {
		if op.Seq <= s.repSeq {
			continue // duplicate delivery: ack idempotently
		}
		if op.Seq != s.repSeq+1 {
			return proto.RepAppendResp{LastSeq: s.repSeq},
				fmt.Errorf("%s: have %d, got %d", repMsgGap, s.repSeq, op.Seq)
		}
		if err := s.applyOpLocked(op); err != nil {
			return proto.RepAppendResp{LastSeq: s.repSeq}, err
		}
		s.repSeq = op.Seq
		s.repSeqA.Store(s.repSeq)
	}
	s.saveState()
	return proto.RepAppendResp{LastSeq: s.repSeq}, nil
}

// handleRepSnapshot replaces the follower's state wholesale.
func (s *Server) handleRepSnapshot(snap proto.RepSnapshot) error {
	if len(s.peers) == 0 {
		return fmt.Errorf("replication: server is not part of a group")
	}
	s.repMu.Lock()
	defer s.repMu.Unlock()
	if err := s.fenceLocked(snap.Epoch, snap.From); err != nil {
		return err
	}
	s.meta.Clear()
	for _, f := range snap.Files {
		if err := s.meta.Put(metadata.FileInfo{
			Name: f.Name, ID: int(f.ID), Size: f.Size,
			Node: int(f.Node), Replica: int(f.Replica),
		}); err != nil {
			return err
		}
		s.sizes.set(f.ID, f.Size)
	}
	s.nextID.Store(snap.NextID)
	s.nextNode.Store(snap.NextNode)
	// The local journal is append-only; a follower's records are a
	// prefix of the primary's replicated stream, so appending the tail
	// converges. (After a demotion the prefix property can break; the
	// popularity counts are advisory and re-converge on later epochs.)
	for i := s.accesses.Len(); i < len(snap.Accesses); i++ {
		r := snap.Accesses[i]
		s.recordAccess(int(r.FileID), r.TimeS, r.Size)
	}
	s.accessMark = int64(s.accesses.Len())
	s.repSeq = snap.Seq
	s.repSeqA.Store(s.repSeq)
	s.saveState()
	return nil
}

// fenceLocked implements epoch fencing for incoming replication frames:
// frames from an older epoch are rejected; frames from a newer epoch
// demote a primary and re-point the follower at the sender.
func (s *Server) fenceLocked(epoch uint64, from int64) error {
	cur := s.epoch.Load()
	if epoch < cur || (epoch == cur && s.primary.Load()) {
		return fmt.Errorf("%s: local %d, got %d", repMsgStaleEpoch, cur, epoch)
	}
	if epoch > cur {
		s.epoch.Store(epoch)
		if s.primary.CompareAndSwap(true, false) {
			s.roleG.Set(0)
			s.logger.Printf("replication: stepping down, peer %d has epoch %d", from, epoch)
		}
	}
	if from >= 0 && int(from) < len(s.cfg.Peers) {
		s.primaryIdx.Store(from)
	}
	return nil
}

// handleRepStatus answers "who are you": role, epoch, log position.
// Lock-free so a primary mid-fan-out still answers elections honestly.
func (s *Server) handleRepStatus() proto.RepStatusResp {
	return proto.RepStatusResp{
		Primary:    s.primary.Load(),
		Epoch:      s.epoch.Load(),
		Seq:        s.repSeqA.Load(),
		PrimaryIdx: s.primaryIdx.Load(),
	}
}

// repLoop is the replication heartbeat: primaries flush popularity
// epochs and repair lagging followers; followers watch the primary and
// elect on its death.
func (s *Server) repLoop() {
	defer s.repWg.Done()
	interval := s.cfg.Health.ProbeInterval
	if interval <= 0 {
		interval = time.Second
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-ticker.C:
		}
		if s.primary.Load() {
			s.primaryDuties()
		} else {
			s.watchPrimary()
		}
	}
}

// primaryDuties: replicate any popularity records logged since the last
// epoch, then snapshot-repair any follower marked out of sync.
func (s *Server) primaryDuties() {
	s.flushAccessEpoch()
	s.repMu.Lock()
	var wg sync.WaitGroup
	var snap []byte
	for _, p := range s.peers {
		if p == nil || p.synced {
			continue
		}
		if snap == nil {
			snap = s.snapshotLocked().Encode()
		}
		wg.Add(1)
		go func(p *peerHandle) {
			defer wg.Done()
			s.sendSnapshot(p, snap)
		}(p)
	}
	wg.Wait()
	s.updateLagLocked()
	s.repMu.Unlock()
}

// flushAccessEpoch replicates the access-journal records appended since
// the previous epoch as one batched op. Lookups stay lock-free and
// replication-free on the hot path; followers receive popularity in
// periodic batches, which is all the prefetch ranking needs.
func (s *Server) flushAccessEpoch() {
	if len(s.peers) == 0 {
		return
	}
	s.repMu.Lock()
	defer s.repMu.Unlock()
	if !s.primary.Load() {
		return
	}
	// Scan only the tail appended since the last epoch: the flush runs
	// every repLoop tick, and re-walking the whole journal each time
	// made the tick O(history) — a measurable stall source under load.
	var recs []proto.RepAccess
	maxSeq := s.accessMark - 1
	s.accesses.ScanFrom(s.accessMark, func(r trace.Record) {
		recs = append(recs, proto.RepAccess{FileID: int64(r.FileID), TimeS: r.TimeS, Size: r.Size})
		if r.Seq > maxSeq {
			maxSeq = r.Seq
		}
	})
	if len(recs) == 0 {
		return
	}
	s.accessMark = maxSeq + 1
	s.repSeq++
	s.repSeqA.Store(s.repSeq)
	s.replicateLocked([]proto.RepOp{{Seq: s.repSeq, Kind: proto.RepOpAccess, Records: recs}}, telemetry.SpanContext{})
}

// watchPrimary probes the believed primary; FailThreshold consecutive
// failures (or an explicit demotion signal) trigger an election.
func (s *Server) watchPrimary() {
	if s.forceElect.CompareAndSwap(true, false) {
		s.runElection()
		return
	}
	idx := int(s.primaryIdx.Load())
	if idx == s.cfg.Self || idx < 0 || idx >= len(s.peers) || s.peers[idx] == nil {
		s.runElection()
		return
	}
	p := s.peers[idx]
	_, payload, err := p.probe.Call(proto.TRepStatusReq, nil)
	if err == nil {
		if st, derr := proto.DecodeRepStatusResp(payload); derr == nil {
			s.adoptEpoch(st.Epoch)
			if st.Primary {
				s.watchFails = 0
				return
			}
			// It answered but no longer claims primary (it was demoted,
			// or never promoted): hunt for the real one now.
			s.watchFails = 0
			s.runElection()
			return
		}
	}
	s.watchFails++
	if s.watchFails >= s.cfg.Health.FailThreshold {
		s.watchFails = 0
		s.runElection()
	}
}

// runElection probes every peer: an existing primary with a current
// epoch is adopted; otherwise the reachable follower (including self)
// with the highest applied seq — ties to the lowest index — wins.
// Every follower computes the same winner from the same inputs; only
// the winner promotes itself, everyone else re-points and keeps
// watching.
func (s *Server) runElection() {
	sts := s.probePeers()
	maxEpoch := s.epoch.Load()
	for _, st := range sts {
		if st != nil && st.Epoch > maxEpoch {
			maxEpoch = st.Epoch
		}
	}
	// An alive primary in the newest epoch keeps the crown.
	bestIdx, found := -1, false
	for idx, st := range sts {
		if st != nil && st.Primary && st.Epoch == maxEpoch {
			if !found || idx < bestIdx {
				bestIdx, found = idx, true
			}
		}
	}
	if found {
		s.adoptEpoch(maxEpoch)
		s.primaryIdx.Store(int64(bestIdx))
		return
	}
	winner, winnerSeq := s.cfg.Self, s.repSeqA.Load()
	for idx, st := range sts {
		if st == nil || st.Primary {
			continue
		}
		if st.Seq > winnerSeq || (st.Seq == winnerSeq && idx < winner) {
			winner, winnerSeq = idx, st.Seq
		}
	}
	if winner == s.cfg.Self {
		s.promote(maxEpoch)
		return
	}
	s.primaryIdx.Store(int64(winner))
}

// promote turns this follower into the primary: bump the epoch past
// everything seen, mark every peer for snapshot resync, and re-register
// the storage nodes with an immediate probe round so the health view is
// fresh before the first client lands.
func (s *Server) promote(maxEpoch uint64) {
	s.repMu.Lock()
	s.adoptEpoch(maxEpoch + 1)
	s.primary.Store(true)
	s.primaryIdx.Store(int64(s.cfg.Self))
	for _, p := range s.peers {
		if p != nil {
			p.synced = false
		}
	}
	s.accessMark = int64(s.accesses.Len())
	epoch, seq := s.epoch.Load(), s.repSeq
	s.repMu.Unlock()
	s.roleG.Set(1)
	s.failoversC.Inc()
	s.logger.Printf("replication: promoted to primary (epoch %d, seq %d)", epoch, seq)
	s.probeNodesOnce()
}

// IsPrimary reports whether this server currently accepts client
// mutations (tests and operators poll it across failovers).
func (s *Server) IsPrimary() bool { return s.isPrimary() }

// ReplStatus exposes the replication position for tests and telemetry
// scraping: role, epoch, and last applied op seq.
func (s *Server) ReplStatus() (primary bool, epoch, seq uint64) {
	return s.primary.Load(), s.epoch.Load(), s.repSeqA.Load()
}
