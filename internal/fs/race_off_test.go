//go:build !race

package fs

const raceEnabled = false
