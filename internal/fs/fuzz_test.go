package fs

import (
	"encoding/json"
	"reflect"
	"testing"
)

// Fuzzers for the metadata persistence decoders (ISSUE 3): malformed
// snapshot bytes must never panic, and anything a decoder accepts must
// survive an encode/decode round trip unchanged — the property loadState
// and loadManifest rely on after a crash leaves an arbitrary file behind.

func FuzzDecodeNodeManifest(f *testing.F) {
	seed := nodeManifest{
		Version:  manifestVersion,
		NextDisk: 3,
		Files: []nodeFileEntry{
			{ID: 0, Size: 1e6, Disk: 0, Prefetched: true},
			{ID: 1, Size: 5e8, Disk: 1},
		},
		Dirty: []dirtyEntry{{ID: 1, Size: 5e8}},
	}
	raw, err := json.MarshalIndent(seed, "", "  ")
	if err != nil {
		f.Fatal(err)
	}
	f.Add(raw)
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"version":1}`))
	f.Add([]byte(`{"version":99,"files":[{"id":-1}]}`))
	f.Add([]byte(`{"version":1,"files":[{"id":1,"size":-5,"disk":1e9}]}`))
	f.Add([]byte(`not json`))
	f.Add([]byte(nil))

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := decodeNodeManifest(data)
		if err != nil {
			return
		}
		reEnc, err := json.MarshalIndent(m, "", "  ")
		if err != nil {
			t.Fatalf("re-encoding accepted manifest: %v", err)
		}
		again, err := decodeNodeManifest(reEnc)
		if err != nil {
			t.Fatalf("re-decoding own output: %v", err)
		}
		if !reflect.DeepEqual(m, again) {
			t.Fatalf("round trip changed manifest:\n%+v\n%+v", m, again)
		}
	})
}

func FuzzDecodeServerState(f *testing.F) {
	seed := serverState{
		Version:  manifestVersion,
		NextID:   7,
		NextNode: 2,
		Files: []serverFileEntry{
			{Name: "a.dat", ID: 0, Size: 1e6, Node: 0},
			{Name: "b.dat", ID: 6, Size: 2e7, Node: 1},
		},
	}
	raw, err := json.MarshalIndent(seed, "", "  ")
	if err != nil {
		f.Fatal(err)
	}
	f.Add(raw)
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"version":1,"next_id":-3}`))
	f.Add([]byte(`{"version":1,"files":[{"name":"","id":0,"size":0,"node":-1}]}`))
	f.Add([]byte(`[1,2,3]`))
	f.Add([]byte(`{"version":1,"files":`))

	f.Fuzz(func(t *testing.T, data []byte) {
		st, err := decodeServerState(data)
		if err != nil {
			return
		}
		if st.Version != manifestVersion {
			t.Fatalf("decoder accepted version %d", st.Version)
		}
		reEnc, err := json.MarshalIndent(st, "", "  ")
		if err != nil {
			t.Fatalf("re-encoding accepted state: %v", err)
		}
		again, err := decodeServerState(reEnc)
		if err != nil {
			t.Fatalf("re-decoding own output: %v", err)
		}
		if !reflect.DeepEqual(st, again) {
			t.Fatalf("round trip changed state:\n%+v\n%+v", st, again)
		}
	})
}
