package fs

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"eevfs/internal/proto"
)

// TestStreamConnCapRejectedTyped pins the per-connection stream bound
// and — the part that matters — that hitting it can never wedge the
// connection's demux loop: stream handlers live outside the RPC worker
// pool, so the loop keeps reading credit frames and every admitted
// stream still finishes while excess opens are rejected with a typed
// ErrNodeUnavailable.
func TestStreamConnCapRejectedTyped(t *testing.T) {
	cl, _, _ := testCluster(t, 1, nil)
	content := patternedContent(99, 64<<10)
	if err := cl.Create("capped", content); err != nil {
		t.Fatal(err)
	}

	// Window-1, min-chunk streams: each node handler parks in waitCredit
	// long before its 64 KB is sent, so the streams pile up server-side.
	opts := StreamOptions{ChunkBytes: proto.MinStreamChunk, Window: 1}
	var open []*FileReader
	defer func() {
		for _, r := range open {
			r.Close()
		}
	}()
	rejected := 0
	for i := 0; i < defaultConnStreams+6; i++ {
		r, err := cl.OpenRead("capped", opts)
		if err != nil {
			if !errors.Is(err, ErrNodeUnavailable) {
				t.Fatalf("open %d: err = %v, want ErrNodeUnavailable", i, err)
			}
			rejected++
			continue
		}
		open = append(open, r)
	}
	if rejected == 0 {
		t.Fatalf("%d window-1 streams on one connection never hit the cap", defaultConnStreams+6)
	}
	if len(open) != defaultConnStreams {
		t.Fatalf("%d streams admitted, want %d", len(open), defaultConnStreams)
	}

	// The demux loop must still be feeding the admitted streams: drain
	// one end to end, credits and all, and check the bytes.
	got, err := io.ReadAll(open[0])
	if err != nil {
		t.Fatalf("reading an admitted stream at the cap: %v", err)
	}
	if !bytes.Equal(got, content) {
		t.Fatalf("admitted stream returned %d bytes, want %d", len(got), len(content))
	}
	open[0].Close()

	// Freeing one slot makes the next open admissible again, and plain
	// round trips on the same connection never stopped working.
	r, err := cl.OpenRead("capped", opts)
	if err != nil {
		t.Fatalf("open after a slot freed: %v", err)
	}
	open[0] = r
	if _, _, err := cl.Read("capped"); err != nil {
		t.Fatalf("RPC read with the connection at the stream cap: %v", err)
	}
}

// errAfterReader fails with errBoom once n bytes have been produced.
type errAfterReader struct{ n int }

var errBoom = errors.New("reader exploded")

func (r *errAfterReader) Read(p []byte) (int, error) {
	if r.n <= 0 {
		return 0, errBoom
	}
	if len(p) > r.n {
		p = p[:r.n]
	}
	for i := range p {
		p[i] = 0xAB
	}
	r.n -= len(p)
	return len(p), nil
}

// TestWriteFromSourceFailureLeavesFileIntact pins WriteFrom's failure
// path: the source reader dying mid-copy surfaces its error and the
// file's previous content stays visible (the .part protocol never
// exposes the partial write).
func TestWriteFromSourceFailureLeavesFileIntact(t *testing.T) {
	cl, _, _ := testCluster(t, 1, nil)
	old := patternedContent(7, 4<<10)
	if err := cl.Create("wf.dat", old); err != nil {
		t.Fatal(err)
	}
	_, err := cl.WriteFrom("wf.dat", 256<<10, &errAfterReader{n: 8 << 10})
	if err == nil {
		t.Fatal("WriteFrom with a dying source reported success")
	}
	got, _, err := cl.Read("wf.dat")
	if err != nil {
		t.Fatalf("read after failed WriteFrom: %v", err)
	}
	if !bytes.Equal(got, old) {
		t.Fatalf("failed WriteFrom disturbed the old content (%d bytes, want %d)", len(got), len(old))
	}
}

// TestReadToMissingFileTyped pins ReadTo's open-failure path: the
// sentinel classification survives the streaming wrapper.
func TestReadToMissingFileTyped(t *testing.T) {
	cl, _, _ := testCluster(t, 1, nil)
	var sink bytes.Buffer
	_, _, err := cl.ReadTo("no-such-file", &sink)
	if !errors.Is(err, ErrFileNotFound) {
		t.Fatalf("err = %v, want ErrFileNotFound", err)
	}
	if sink.Len() != 0 {
		t.Fatalf("ReadTo wrote %d bytes for a missing file", sink.Len())
	}
}
