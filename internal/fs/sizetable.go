package fs

import (
	"sync"
	"sync/atomic"
)

// Chunk geometry for sizeTable, mirroring trace.AtomicLog: ids are dense
// and monotonic, so a chunked grow-only array beats a map and needs no
// per-read lock.
const (
	sizeChunkBits = 10
	sizeChunkSize = 1 << sizeChunkBits
)

type sizeChunk [sizeChunkSize]int64

// sizeTable is the server's id -> size record, kept separately from the
// metadata map because deleted files must keep their slot (popularity
// counts are indexed by dense file id). Writes happen on the create
// path; reads happen during prefetch ranking; both are lock-free after
// the chunk exists. Must not be copied.
type sizeTable struct {
	chunks atomic.Pointer[[]*sizeChunk]
	grow   sync.Mutex
}

// set stores the size for a file id, growing the chunk directory on
// first touch of a new chunk.
func (t *sizeTable) set(id int64, size int64) {
	idx := int(id >> sizeChunkBits)
	for {
		if cs := t.chunks.Load(); cs != nil && idx < len(*cs) {
			atomic.StoreInt64(&(*cs)[idx][id&(sizeChunkSize-1)], size)
			return
		}
		t.grow.Lock()
		cs := t.chunks.Load()
		if cs == nil || idx >= len(*cs) {
			var grown []*sizeChunk
			if cs != nil {
				grown = append(grown, *cs...)
			}
			for len(grown) <= idx {
				grown = append(grown, new(sizeChunk))
			}
			t.chunks.Store(&grown)
		}
		t.grow.Unlock()
	}
}

// snapshot copies sizes for ids [0, n); ids never set read as 0.
func (t *sizeTable) snapshot(n int64) []int64 {
	out := make([]int64, n)
	cs := t.chunks.Load()
	if cs == nil {
		return out
	}
	for id := int64(0); id < n; id++ {
		idx := int(id >> sizeChunkBits)
		if idx >= len(*cs) {
			break
		}
		out[id] = atomic.LoadInt64(&(*cs)[idx][id&(sizeChunkSize-1)])
	}
	return out
}
