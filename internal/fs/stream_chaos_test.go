package fs

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"eevfs/internal/faultnet"
	"eevfs/internal/proto"
)

// TestChaosStreamKillFailsAllTyped: a mid-stream connection kill must
// fail every in-flight stream on that connection with a typed
// *proto.TransportError (never a hang, never a silent short read), leak
// no goroutines (chaosCluster registers leak.Check), and a post-heal
// OpenRead must redial and deliver the full content.
func TestChaosStreamKillFailsAllTyped(t *testing.T) {
	cl, _, nodes, _, clientNet := chaosCluster(t, 1)
	content := patternedContent(21, 512<<10)
	if err := cl.Create("k.dat", content); err != nil {
		t.Fatal(err)
	}

	// Four concurrent streams, all multiplexed on the single client→node
	// connection, each parked mid-transfer on a tiny chunk schedule.
	const streams = 4
	readers := make([]*FileReader, streams)
	for i := range readers {
		r, err := cl.OpenRead("k.dat", StreamOptions{ChunkBytes: 4 << 10, Window: 2})
		if err != nil {
			t.Fatal(err)
		}
		readers[i] = r
		if _, err := io.ReadFull(r, make([]byte, 8<<10)); err != nil {
			t.Fatalf("stream %d priming read: %v", i, err)
		}
	}

	// Kill the connection on its next byte in either direction.
	clientNet.SetFault(nodes[0].Addr(), faultnet.Fault{DropAfterBytes: 1})

	for i, r := range readers {
		_, err := io.ReadAll(r)
		if err == nil {
			t.Fatalf("stream %d finished through a killed connection", i)
		}
		var te *proto.TransportError
		if !errors.As(err, &te) {
			t.Fatalf("stream %d error = %v, want *proto.TransportError", i, err)
		}
		if err := r.Close(); err != nil {
			t.Fatalf("stream %d close after fault: %v", i, err)
		}
	}

	// Heal: the next open redials a fresh connection and the stream
	// delivers the file byte-identical.
	clientNet.Heal(nodes[0].Addr())
	var buf bytes.Buffer
	if _, _, err := cl.ReadTo("k.dat", &buf); err != nil {
		t.Fatalf("post-heal stream: %v", err)
	}
	if !bytes.Equal(buf.Bytes(), content) {
		t.Fatal("post-heal stream content mismatch")
	}
}

// TestChaosStreamCorruptionFailsTyped: wire corruption mid-stream mangles
// the frame headers, which must poison the connection and surface as a
// typed transport error on the open stream — corrupted framing is never
// delivered as data.
func TestChaosStreamCorruptionFailsTyped(t *testing.T) {
	cl, _, nodes, _, clientNet := chaosCluster(t, 1)
	content := patternedContent(22, 256<<10)
	if err := cl.Create("c.dat", content); err != nil {
		t.Fatal(err)
	}

	r, err := cl.OpenRead("c.dat", StreamOptions{ChunkBytes: 4 << 10, Window: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := io.ReadFull(r, make([]byte, 8<<10)); err != nil {
		t.Fatal(err)
	}

	// Flip every byte from here on: the next frame header the client
	// parses is garbage.
	clientNet.SetFault(nodes[0].Addr(), faultnet.Fault{CorruptEvery: 1})
	_, err = io.ReadAll(r)
	if err == nil {
		t.Fatal("stream delivered corrupted frames as clean EOF")
	}
	var te *proto.TransportError
	if !errors.As(err, &te) {
		t.Fatalf("corruption error = %v, want *proto.TransportError", err)
	}
	r.Close()

	clientNet.Heal(nodes[0].Addr())
	var buf bytes.Buffer
	if _, _, err := cl.ReadTo("c.dat", &buf); err != nil {
		t.Fatalf("post-heal stream: %v", err)
	}
	if !bytes.Equal(buf.Bytes(), content) {
		t.Fatal("post-heal stream content mismatch")
	}
}

// TestChaosStreamWriteKillLeavesFileIntact: killing the connection in
// the middle of a streamed write must fail the writer typed and leave
// the previous file content untouched (the .part protocol never exposes
// a half-written file).
func TestChaosStreamWriteKillLeavesFileIntact(t *testing.T) {
	cl, _, nodes, _, clientNet := chaosCluster(t, 1)
	old := patternedContent(23, 64<<10)
	if err := cl.Create("w.dat", old); err != nil {
		t.Fatal(err)
	}

	w, err := cl.OpenWrite("w.dat", 512<<10, StreamOptions{ChunkBytes: 4 << 10, Window: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write(make([]byte, 8<<10)); err != nil {
		t.Fatal(err)
	}
	clientNet.SetFault(nodes[0].Addr(), faultnet.Fault{DropAfterBytes: 1})
	werr := func() error {
		for i := 0; i < 128; i++ {
			if _, err := w.Write(make([]byte, 4<<10)); err != nil {
				return err
			}
		}
		return w.Close()
	}()
	if werr == nil {
		t.Fatal("streamed write committed through a killed connection")
	}
	var te *proto.TransportError
	if !errors.As(werr, &te) {
		t.Fatalf("write fault error = %v, want *proto.TransportError", werr)
	}
	w.Close()

	clientNet.Heal(nodes[0].Addr())
	got, _, err := cl.Read("w.dat")
	if err != nil {
		t.Fatalf("read after aborted streamed write: %v", err)
	}
	if !bytes.Equal(got, old) {
		t.Fatal("aborted streamed write exposed partial content")
	}
}
