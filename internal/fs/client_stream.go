// The client side of the streaming data plane (DESIGN.md §19): OpenRead
// returns an io.ReadCloser pulling a file through pooled chunk buffers,
// OpenWrite/WriteFrom push one through the node's credit window — both
// with O(chunk) client memory regardless of file size, per-stream trace
// spans, and the same typed-error surface as the RPC paths.
package fs

import (
	"fmt"
	"io"

	"eevfs/internal/proto"
	"eevfs/internal/telemetry"
)

// StreamOptions tunes one streamed transfer. The zero value asks for the
// node's preferred chunk size and the default flow-control window.
type StreamOptions struct {
	// ChunkBytes requests a specific data-frame size (clamped to
	// [proto.MinStreamChunk, proto.MaxStreamChunk]; 0 = node preference).
	ChunkBytes int
	// Window requests a flow-control credit window (clamped to
	// proto.MaxStreamWindow; 0 = proto.DefaultStreamWindow).
	Window int
}

// FileReader is one open streamed read: an io.ReadCloser over the file's
// content. Errors surface typed (fs sentinels / *proto.TransportError);
// Close before EOF aborts the transfer upstream.
type FileReader struct {
	rs    *proto.ReadStream
	sp    *telemetry.Span // root client.stream.read span
	att   *telemetry.Span // node round-trip child span
	fin   bool
	final error
}

// Size returns the total byte count the stream delivers.
func (r *FileReader) Size() int64 { return r.rs.Size() }

// FromBuffer reports whether the node serves the stream from its buffer
// disk.
func (r *FileReader) FromBuffer() bool { return r.rs.FromBuffer() }

// Read implements io.Reader.
func (r *FileReader) Read(p []byte) (int, error) {
	n, err := r.rs.Read(p)
	if err != nil && err != io.EOF {
		err = mapRemote(err)
	}
	if err != nil && !r.fin {
		r.fin = true
		if err == io.EOF {
			r.att.Finish()
			r.sp.Finish()
		} else {
			r.final = err
			r.att.End(err)
			r.sp.End(err)
		}
	}
	return n, err
}

// Close releases the stream; closing before EOF aborts the transfer.
func (r *FileReader) Close() error {
	err := r.rs.Close()
	if !r.fin {
		r.fin = true
		r.att.Finish()
		r.sp.Finish()
	}
	return err
}

// OpenRead opens a streamed read of name: lookup on the server (with the
// usual failover walk), then a chunked stream straight from the owning
// storage node. A transport fault during the open is retried once
// against a fresh lookup, so a node redirect or replica change heals
// transparently; faults after data starts flowing surface to the caller
// (a partially consumed stream cannot be transparently replayed).
func (c *Client) OpenRead(name string, opts StreamOptions) (fr *FileReader, err error) {
	sp := c.startOp("stream.read", name)
	defer func() {
		if err != nil {
			sp.End(err)
		}
	}()
	var lastErr error
	for attempt := 0; attempt < 2; attempt++ {
		_, payload, err := c.serverRT(proto.TLookupReq, proto.LookupReq{Name: name}.Encode(), sp)
		if err != nil {
			return nil, err
		}
		loc, err := proto.DecodeLookupResp(payload)
		if err != nil {
			return nil, err
		}
		att := sp.Child("client.rt.node.stream")
		att.Annotate("peer", loc.NodeAddr)
		rs, err := c.nodeEp(loc.NodeAddr).OpenReadStream(proto.StreamOpenReq{
			FileID:    loc.FileID,
			ChunkSize: uint32(opts.ChunkBytes),
			Window:    uint32(opts.Window),
		}, att.Context())
		if err == nil {
			return &FileReader{rs: rs, sp: sp, att: att}, nil
		}
		lastErr = mapRemote(err)
		att.End(lastErr)
		if !isTransportErr(err) {
			return nil, lastErr
		}
		// Transport fault before any data moved: redo the lookup (the
		// server may place us on a replica) and try once more.
	}
	return nil, lastErr
}

// FileWriter is one open streamed write: an io.WriteCloser that must
// receive exactly the declared size and be Closed to commit. Buffered
// reports (after Close) whether the node's write-buffer absorbed it.
type FileWriter struct {
	ws  *proto.WriteStream
	sp  *telemetry.Span
	att *telemetry.Span
	fin bool
}

// Write implements io.Writer.
func (w *FileWriter) Write(p []byte) (int, error) {
	n, err := w.ws.Write(p)
	if err != nil {
		err = mapRemote(err)
	}
	return n, err
}

// Close commits the write (the node acknowledges after landing all
// bytes) and ends the stream's spans.
func (w *FileWriter) Close() error {
	err := w.ws.Close()
	if err != nil {
		err = mapRemote(err)
	}
	if !w.fin {
		w.fin = true
		w.att.End(err)
		w.sp.End(err)
	}
	return err
}

// Buffered reports whether the node's write-buffer area absorbed the
// content. Valid after a successful Close.
func (w *FileWriter) Buffered() bool { return w.ws.Buffered() }

// OpenWrite opens a streamed replacement of name's content with exactly
// size bytes. The lookup declares write intent, so the server
// invalidates any buffer-disk replica before the stream opens — the
// same stale-mirror guarantee as the RPC Write path.
func (c *Client) OpenWrite(name string, size int64, opts StreamOptions) (fw *FileWriter, err error) {
	if size <= 0 {
		return nil, fmt.Errorf("fs: refusing to stream empty content to %q", name)
	}
	sp := c.startOp("stream.write", name)
	defer func() {
		if err != nil {
			sp.End(err)
		}
	}()
	var lastErr error
	for attempt := 0; attempt < 2; attempt++ {
		_, payload, err := c.serverRT(proto.TLookupWriteReq, proto.LookupReq{Name: name}.Encode(), sp)
		if err != nil {
			return nil, err
		}
		loc, err := proto.DecodeLookupResp(payload)
		if err != nil {
			return nil, err
		}
		att := sp.Child("client.rt.node.stream")
		att.Annotate("peer", loc.NodeAddr)
		ws, err := c.nodeEp(loc.NodeAddr).OpenWriteStream(proto.StreamOpenReq{
			FileID:    loc.FileID,
			Size:      size,
			ChunkSize: uint32(opts.ChunkBytes),
			Window:    uint32(opts.Window),
		}, att.Context())
		if err == nil {
			return &FileWriter{ws: ws, sp: sp, att: att}, nil
		}
		lastErr = mapRemote(err)
		att.End(lastErr)
		if !isTransportErr(err) {
			return nil, lastErr
		}
	}
	return nil, lastErr
}

// WriteFrom streams size bytes from r into name: OpenWrite + io.Copy +
// Close. buffered reports whether the node's write-buffer absorbed it.
func (c *Client) WriteFrom(name string, size int64, r io.Reader) (buffered bool, err error) {
	w, err := c.OpenWrite(name, size, StreamOptions{})
	if err != nil {
		return false, err
	}
	if _, err := io.Copy(w, io.LimitReader(r, size)); err != nil {
		w.Close()
		return false, err
	}
	if err := w.Close(); err != nil {
		return false, err
	}
	return w.Buffered(), nil
}

// ReadTo streams name's content into w: OpenRead + io.Copy + Close.
// fromBuffer reports whether the node's buffer disk served it.
func (c *Client) ReadTo(name string, w io.Writer) (n int64, fromBuffer bool, err error) {
	r, err := c.OpenRead(name, StreamOptions{})
	if err != nil {
		return 0, false, err
	}
	defer r.Close()
	n, err = io.Copy(w, r)
	if err != nil {
		return n, r.FromBuffer(), err
	}
	return n, r.FromBuffer(), nil
}
