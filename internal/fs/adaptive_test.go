package fs

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"eevfs/internal/adaptive"
	"eevfs/internal/telemetry"
)

// adaptiveTestParams shrinks the churn detector so a handful of reads
// can trigger a re-prefetch.
func adaptiveTestParams() *adaptive.Params {
	p := adaptive.Defaults()
	p.ChurnWindow = 8
	p.ChurnCooldown = 2
	return &p
}

// TestAdaptivePolicyReprefetches: under -policy=adaptive the server must
// notice — with no client prefetch command — that the hot set it is
// serving is not buffered, re-prefetch it on its own, and serve the
// following reads from the buffer disks.
func TestAdaptivePolicyReprefetches(t *testing.T) {
	reg := telemetry.NewRegistry()
	cl, _, _ := testClusterSrv(t, 2, nil, func(c *ServerConfig) {
		c.Policy = "adaptive"
		c.AdaptiveParams = adaptiveTestParams()
		c.AdaptiveK = 4
		c.Metrics = reg
	})
	content := bytes.Repeat([]byte("drift"), 800)
	for i := 0; i < 4; i++ {
		if err := cl.Create(fmt.Sprintf("hot%d.dat", i), content); err != nil {
			t.Fatal(err)
		}
	}

	// Hammer the hot set: every read misses the (empty) buffered set, so
	// once the window fills the detector must fire and the background
	// recompute must stage these files. Poll until a read comes back
	// from a buffer disk.
	deadline := time.Now().Add(5 * time.Second)
	buffered := false
	for !buffered {
		if time.Now().After(deadline) {
			t.Fatalf("no read was served from the buffer after %d re-prefetches",
				reg.Counter("server.adaptive.reprefetches").Value())
		}
		for i := 0; i < 4 && !buffered; i++ {
			_, fromBuffer, err := cl.Read(fmt.Sprintf("hot%d.dat", i))
			if err != nil {
				t.Fatal(err)
			}
			buffered = fromBuffer
		}
	}
	if got := reg.Counter("server.adaptive.reprefetches").Value(); got < 1 {
		t.Fatalf("reads came from the buffer but the reprefetch counter reads %d", got)
	}
}

// TestAdaptivePolicyQuietWhenBufferedSetHolds: after the adaptive server
// has buffered the hot set, continued reads of the same files are hits —
// the detector must not keep firing re-prefetches.
func TestAdaptivePolicyQuietWhenBufferedSetHolds(t *testing.T) {
	reg := telemetry.NewRegistry()
	cl, _, _ := testClusterSrv(t, 2, nil, func(c *ServerConfig) {
		c.Policy = "adaptive"
		c.AdaptiveParams = adaptiveTestParams()
		c.AdaptiveK = 4
		c.Metrics = reg
	})
	content := bytes.Repeat([]byte("x"), 2048)
	for i := 0; i < 3; i++ {
		if err := cl.Create(fmt.Sprintf("f%d.dat", i), content); err != nil {
			t.Fatal(err)
		}
	}
	// Trigger the first recompute, then wait for it to land.
	deadline := time.Now().Add(5 * time.Second)
	for reg.Counter("server.adaptive.reprefetches").Value() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("adaptive recompute never fired")
		}
		for i := 0; i < 3; i++ {
			if _, _, err := cl.Read(fmt.Sprintf("f%d.dat", i)); err != nil {
				t.Fatal(err)
			}
		}
	}
	settled := reg.Counter("server.adaptive.reprefetches").Value()
	// A steady stream of the now-buffered hot set: pure hits, so the
	// miss fraction stays at zero and no further trigger is legal.
	for round := 0; round < 20; round++ {
		for i := 0; i < 3; i++ {
			if _, _, err := cl.Read(fmt.Sprintf("f%d.dat", i)); err != nil {
				t.Fatal(err)
			}
		}
	}
	if got := reg.Counter("server.adaptive.reprefetches").Value(); got != settled {
		t.Fatalf("reprefetches kept firing on a stable hot set: %d -> %d", settled, got)
	}
}

// TestAdaptivePolicyValidation: unknown policies and invalid parameter
// sets must be rejected at startup, and the static default must leave
// the adaptive machinery off.
func TestAdaptivePolicyValidation(t *testing.T) {
	if _, err := StartServer(ServerConfig{NodeAddrs: []string{"127.0.0.1:1"}, Policy: "zealous"}); err == nil {
		t.Fatal("unknown policy accepted")
	}
	bad := adaptive.Defaults()
	bad.ChurnThreshold = 2
	if _, err := StartServer(ServerConfig{NodeAddrs: []string{"127.0.0.1:1"}, Policy: "adaptive", AdaptiveParams: &bad}); err == nil {
		t.Fatal("invalid adaptive params accepted")
	}
	_, srv, _ := testCluster(t, 1, nil)
	if srv.churn != nil {
		t.Fatal("static server built a churn detector")
	}
}
