package fs

import (
	"errors"
	"fmt"
	"log"
	"net"
	"os"
	"path/filepath"
	"sync"
	"time"

	"eevfs/internal/disk"
	"eevfs/internal/metadata"
	"eevfs/internal/proto"
	"eevfs/internal/simtime"
	"eevfs/internal/telemetry"
)

// NodeConfig configures one storage-node daemon.
type NodeConfig struct {
	// Addr is the TCP listen address ("127.0.0.1:0" for an ephemeral
	// test port).
	Addr string
	// RootDir holds the disk directories: data0..dataN-1 and buffer.
	RootDir string
	// DataDisks is the number of data disks (directories).
	DataDisks int
	// DataModel and BufferModel are the drive models backing latency
	// injection and energy accounting.
	DataModel   disk.Model
	BufferModel disk.Model
	// IdleThresholdSec sends a data disk to standby after this much model
	// time without requests (Section III-C). Zero disables DPM.
	IdleThresholdSec float64
	// TimeScale is model seconds per real second (see Clock).
	TimeScale float64
	// InjectLatency sleeps the modeled service and transition times.
	// Disable only for benchmarks of the protocol itself.
	InjectLatency bool
	// WriteBuffer stores incoming writes on the buffer disk's log and
	// flushes them to the data disk lazily (Section III-C).
	WriteBuffer bool
	// BufferCapacityBytes bounds the buffer disk's occupancy (prefetched
	// copies plus unflushed buffered writes). Zero means unbounded —
	// directories have no spindle-sized limit, but a deployment standing
	// in for a real drive should set this.
	BufferCapacityBytes int64
	// StripeChunkBytes stripes file content across the node's data disks
	// in chunks of this size (the paper's Section VII striping proposal).
	// Chunk reads and writes proceed in parallel across the spindles.
	// Zero stores each file whole on one data disk.
	StripeChunkBytes int64
	// StreamChunkBytes is the node's preferred data-frame size for the
	// streaming read/write path (DESIGN.md §19); a client's explicit
	// chunk-size request wins. Zero means proto.DefaultStreamChunk.
	StreamChunkBytes int64
	// WriteTimeout bounds writing one response frame, so a stalled or
	// partitioned peer cannot pin a serving goroutine (default 30s).
	WriteTimeout time.Duration
	// AcceptLoops is how many goroutines accept on the listener in
	// parallel (default 4).
	AcceptLoops int
	// ConnWorkers caps concurrent in-flight requests per connection
	// (default 128); ConnStreams caps open streams per connection
	// (default 64).
	ConnWorkers int
	ConnStreams int
	// Logger receives operational messages (nil = log.Default).
	Logger *log.Logger
	// Metrics, when set, receives the node's telemetry: per-op latency
	// histograms and error counters (node.op.*), buffer hit/miss/write
	// counters (node.buffer.*), and power-state transition accounting
	// (node.disk.*). Nil disables instrumentation.
	Metrics *telemetry.Registry
	// Tracer, when set, records a span per handled request (joined to
	// the caller's trace when the frame carried a context) plus disk-level
	// child spans covering spin-ups and service time. Nil disables tracing.
	Tracer *telemetry.Tracer
	// Energy, when set, receives the per-request joule attribution joined
	// from the disks' transition observers: every dwell a disk closes
	// while serving a request is charged to that request's trace and
	// file; idle, standby, and spin-down dwells are charged to the
	// background bucket. Nil disables the join.
	Energy *telemetry.EnergyLedger
}

func (c NodeConfig) validate() error {
	switch {
	case c.RootDir == "":
		return errors.New("fs: node RootDir required")
	case c.DataDisks <= 0:
		return fmt.Errorf("fs: node needs at least one data disk, got %d", c.DataDisks)
	case c.IdleThresholdSec < 0:
		return errors.New("fs: negative idle threshold")
	case c.StripeChunkBytes < 0:
		return errors.New("fs: negative stripe chunk size")
	case c.BufferCapacityBytes < 0:
		return errors.New("fs: negative buffer capacity")
	}
	if err := c.DataModel.Validate(); err != nil {
		return err
	}
	return c.BufferModel.Validate()
}

// nodeDisk pairs a disk state machine with its backing directory. The
// mutex serializes all access — a real drive has one head.
type nodeDisk struct {
	mu       sync.Mutex
	d        *disk.Disk
	dir      string
	label    string
	isBuffer bool
	index    int // data-disk index; -1 for the buffer disk
	timer    *time.Timer

	// Current request attribution, owned by the mu holder: the trace,
	// file, and span this disk is working for right now. The transition
	// observer charges active/spin-up dwells to them; zero values mean
	// background work (flushes, timer-driven spin-downs).
	curTrace uint64
	curFile  string
	curSpan  *telemetry.Span
}

// Node is a running storage-node daemon.
type Node struct {
	cfg    NodeConfig
	clock  *Clock
	ln     net.Listener
	meta   *metadata.NodeMap
	buffer *nodeDisk
	data   []*nodeDisk
	logger *log.Logger

	mu         sync.Mutex
	nextDisk   int             // round-robin cursor for file creation
	dirty      map[int]int64   // fileID -> size awaiting flush to its data disk
	hints      map[int]float64 // fileID -> mean inter-arrival (model sec)
	lastAccess map[int]float64 // fileID -> model time of the last request
	closing    bool
	conns      map[net.Conn]struct{}
	wg         sync.WaitGroup
	hits       int64
	misses     int64
	bufWrites  int64

	// Pre-resolved telemetry handles (all no-ops with a nil registry);
	// hitsC/missesC/bufWritesC mirror the counters above into the
	// registry so the admin endpoint sees them live.
	met           opMetrics
	hitsC         *telemetry.Counter
	missesC       *telemetry.Counter
	bufWritesC    *telemetry.Counter
	flushesC      *telemetry.Counter
	streamBytesC  *telemetry.Counter
	streamChunksC *telemetry.Counter
}

// StartNode creates the disk directories, binds the listener, and starts
// serving.
func StartNode(cfg NodeConfig) (*Node, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.Logger == nil {
		cfg.Logger = log.New(os.Stderr, "eevfs-node ", log.LstdFlags)
	}
	if cfg.WriteTimeout == 0 {
		cfg.WriteTimeout = 30 * time.Second
	}
	n := &Node{
		cfg:        cfg,
		clock:      NewClock(cfg.TimeScale),
		meta:       metadata.NewNodeMap(),
		logger:     cfg.Logger,
		dirty:      make(map[int]int64),
		hints:      make(map[int]float64),
		lastAccess: make(map[int]float64),
		conns:      make(map[net.Conn]struct{}),
	}

	n.met = newOpMetrics(cfg.Metrics, "node", []proto.Type{
		proto.TNodeCreateReq, proto.TNodeWriteReq, proto.TNodeReadReq,
		proto.TNodeReadAtReq, proto.TNodeDeleteReq, proto.TNodePrefetchReq,
		proto.TNodeHintsReq, proto.TNodeStatsReq,
		proto.TStreamReadReq, proto.TStreamWriteReq,
	})
	n.streamBytesC = cfg.Metrics.Counter("node.stream.bytes")
	n.streamChunksC = cfg.Metrics.Counter("node.stream.chunks")
	n.hitsC = cfg.Metrics.Counter("node.buffer.hits")
	n.missesC = cfg.Metrics.Counter("node.buffer.misses")
	n.bufWritesC = cfg.Metrics.Counter("node.buffer.writes")
	n.flushesC = cfg.Metrics.Counter("node.buffer.flushes")
	diskObs := transitionObserver(cfg.Metrics, "node")

	bufDir := filepath.Join(cfg.RootDir, "buffer")
	if err := os.MkdirAll(bufDir, 0o755); err != nil {
		return nil, fmt.Errorf("fs: creating buffer dir: %w", err)
	}
	n.buffer = &nodeDisk{
		d: disk.New("buffer", cfg.BufferModel), dir: bufDir,
		label: "buffer", isBuffer: true, index: -1,
	}
	n.buffer.d.SetObserver(n.diskObserver(n.buffer, diskObs))
	for i := 0; i < cfg.DataDisks; i++ {
		dir := filepath.Join(cfg.RootDir, fmt.Sprintf("data%d", i))
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("fs: creating data dir %d: %w", i, err)
		}
		nd := &nodeDisk{
			d:     disk.New(fmt.Sprintf("data%d", i), cfg.DataModel),
			dir:   dir,
			label: fmt.Sprintf("data%d", i),
			index: i,
		}
		nd.d.SetObserver(n.diskObserver(nd, diskObs))
		n.data = append(n.data, nd)
	}

	if err := n.loadManifest(); err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, err
	}
	n.ln = ln
	loops := cfg.AcceptLoops
	if loops <= 0 {
		loops = 4
	}
	for i := 0; i < loops; i++ {
		n.wg.Add(1)
		go n.acceptLoop()
	}
	return n, nil
}

// Addr returns the bound listen address.
func (n *Node) Addr() string { return n.ln.Addr().String() }

// Files returns a snapshot of the node's local metadata, in id order.
// The simulation-testing harness uses it to cross-check the server's
// placement records against what each node actually holds.
func (n *Node) Files() []metadata.NodeEntry {
	ids := n.meta.IDs()
	out := make([]metadata.NodeEntry, 0, len(ids))
	for _, id := range ids {
		if e, ok := n.meta.Lookup(id); ok {
			out = append(out, e)
		}
	}
	return out
}

// Close stops the daemon, flushes the write buffer, and waits for
// connections to drain.
func (n *Node) Close() error {
	n.mu.Lock()
	if n.closing {
		n.mu.Unlock()
		return nil
	}
	n.closing = true
	for c := range n.conns {
		c.Close()
	}
	n.mu.Unlock()
	err := n.ln.Close()
	n.wg.Wait()
	n.flushAll()
	n.saveManifest()
	return err
}

func (n *Node) acceptLoop() {
	defer n.wg.Done()
	acceptConns(n.ln, n.logger.Printf, func(conn net.Conn) {
		n.mu.Lock()
		if n.closing {
			n.mu.Unlock()
			conn.Close()
			return
		}
		n.conns[conn] = struct{}{}
		n.mu.Unlock()
		n.wg.Add(1)
		go n.serveConn(conn)
	})
}

func (n *Node) serveConn(conn net.Conn) {
	defer n.wg.Done()
	defer func() {
		n.mu.Lock()
		delete(n.conns, conn)
		n.mu.Unlock()
		conn.Close()
	}()
	serveFrames(conn, n.cfg.WriteTimeout, n.dispatch, n.dispatchStream,
		connLimits{workers: n.cfg.ConnWorkers, streams: n.cfg.ConnStreams})
}

func (n *Node) dispatch(t proto.Type, payload []byte, sc telemetry.SpanContext) (proto.Type, []byte, error) {
	start := time.Now()
	sp := n.cfg.Tracer.StartRemote(sc, "node", "node."+opName(t))
	rt, rp, err := n.dispatchInner(t, payload, sp)
	n.met.observe(t, time.Since(start), err)
	sp.End(err)
	return rt, rp, err
}

func (n *Node) dispatchInner(t proto.Type, payload []byte, sp *telemetry.Span) (proto.Type, []byte, error) {
	switch t {
	case proto.TNodeCreateReq:
		req, err := proto.DecodeNodeCreateReq(payload)
		if err != nil {
			return 0, nil, err
		}
		if err := n.handleCreate(req); err != nil {
			return 0, nil, err
		}
		return proto.TNodeCreateResp, nil, nil

	case proto.TNodeWriteReq:
		req, err := proto.DecodeNodeWriteReq(payload)
		if err != nil {
			return 0, nil, err
		}
		buffered, err := n.handleWrite(req, sp)
		if err != nil {
			return 0, nil, err
		}
		return proto.TNodeWriteResp, proto.NodeWriteResp{Buffered: buffered}.Encode(), nil

	case proto.TNodeReadReq:
		req, err := proto.DecodeNodeReadReq(payload)
		if err != nil {
			return 0, nil, err
		}
		data, fromBuffer, err := n.handleRead(req.FileID, sp)
		if err != nil {
			return 0, nil, err
		}
		return proto.TNodeReadResp,
			proto.NodeReadResp{FromBuffer: fromBuffer, Data: data}.Encode(), nil

	case proto.TNodeDeleteReq:
		req, err := proto.DecodeNodeDeleteReq(payload)
		if err != nil {
			return 0, nil, err
		}
		if err := n.handleDelete(req.FileID); err != nil {
			return 0, nil, err
		}
		return proto.TNodeDeleteResp, nil, nil

	case proto.TNodePrefetchReq:
		req, err := proto.DecodeNodePrefetchReq(payload)
		if err != nil {
			return 0, nil, err
		}
		count := n.handlePrefetch(req.FileIDs, sp)
		return proto.TNodePrefetchResp, proto.PrefetchResp{Prefetched: count}.Encode(), nil

	case proto.TNodeReadAtReq:
		req, err := proto.DecodeNodeReadAtReq(payload)
		if err != nil {
			return 0, nil, err
		}
		data, fromBuffer, err := n.handleReadAt(req, sp)
		if err != nil {
			return 0, nil, err
		}
		return proto.TNodeReadAtResp,
			proto.NodeReadResp{FromBuffer: fromBuffer, Data: data}.Encode(), nil

	case proto.TNodeHintsReq:
		req, err := proto.DecodeNodeHintsReq(payload)
		if err != nil {
			return 0, nil, err
		}
		n.handleHints(req)
		return proto.TNodeHintsResp, nil, nil

	case proto.TNodeStatsReq:
		return proto.TNodeStatsResp, n.statsResp().Encode(), nil

	default:
		return 0, nil, fmt.Errorf("fs: node got unexpected message type %d", t)
	}
}

// fileName is the on-disk name for a file id.
func fileName(id int64) string { return fmt.Sprintf("f%08d.dat", id) }

// chunkName is the on-disk name for one stripe chunk of a file.
func chunkName(id int64, chunk int) string {
	return fmt.Sprintf("f%08d.c%03d.dat", id, chunk)
}

// stripeSpans splits size into chunk lengths under the configured stripe
// size; a single-element result means "store whole".
func (n *Node) stripeSpans(size int64) []int64 {
	stripe := n.cfg.StripeChunkBytes
	if stripe <= 0 || size <= stripe || len(n.data) < 2 {
		return []int64{size}
	}
	var spans []int64
	for off := int64(0); off < size; off += stripe {
		s := stripe
		if size-off < s {
			s = size - off
		}
		spans = append(spans, s)
	}
	return spans
}

// reqAttrib ties one disk operation back to the request that caused it:
// the trace and file the energy join charges, and the parent span for
// the disk-level child span. The zero value means background work
// (flushes, shutdown drains).
type reqAttrib struct {
	trace uint64
	file  string
	span  *telemetry.Span
}

// spanAttrib builds the attribution for a request span operating on one
// file. The file key is set even when tracing is off, so the per-file
// energy buckets work for untraced traffic too.
func spanAttrib(sp *telemetry.Span, fileID int64) reqAttrib {
	return reqAttrib{trace: sp.TraceID(), file: fmt.Sprintf("file:%d", fileID), span: sp}
}

// diskObserver composes the metrics transition observer with the energy
// join for one disk: each closed dwell's joules ((now - dwell start) x
// the left state's power draw) are charged to the request the disk is
// currently working for — attribution fields are owned by the nd.mu
// holder, and every transition happens under nd.mu — or to the
// background bucket when there is none. The running dwell start lives in
// the closure; Advance() between transitions does not move it, which is
// fine: the state is unchanged, so the per-dwell product is identical.
func (n *Node) diskObserver(nd *nodeDisk, base disk.Observer) disk.Observer {
	if n.cfg.Energy == nil {
		return base
	}
	model := nd.d.Model()
	arm := "data."
	if nd.isBuffer {
		arm = "buffer."
	}
	last := nd.d.StateSince()
	return func(now simtime.Time, from, to disk.PowerState) {
		if base != nil {
			base(now, from, to)
		}
		j := float64(now-last) * model.StatePower(from)
		last = now
		if from == disk.Active || from == disk.SpinningUp {
			n.cfg.Energy.Attribute(nd.curTrace, nd.curFile, arm+from.String(), j)
			nd.curSpan.AddEnergy(j)
			return
		}
		n.cfg.Energy.Attribute(0, "", arm+from.String(), j)
	}
}

// writeDataFile stores content on the data disks: whole-file on the
// entry's primary disk, or striped across the spindles in parallel.
func (n *Node) writeDataFile(entry metadata.NodeEntry, data []byte, ra reqAttrib) error {
	spans := n.stripeSpans(int64(len(data)))
	if len(spans) == 1 {
		return n.diskWrite(n.data[entry.Disk], fileName(int64(entry.ID)), data, false, ra)
	}
	errs := make([]error, len(spans))
	var wg sync.WaitGroup
	off := int64(0)
	for i, span := range spans {
		dd := n.data[(entry.Disk+i)%len(n.data)]
		part := data[off : off+span]
		wg.Add(1)
		go func(i int, dd *nodeDisk, part []byte) {
			defer wg.Done()
			errs[i] = n.diskWrite(dd, chunkName(int64(entry.ID), i), part, false, ra)
		}(i, dd, part)
		off += span
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// readDataFile reassembles content from the data disks.
func (n *Node) readDataFile(entry metadata.NodeEntry, ra reqAttrib) ([]byte, error) {
	spans := n.stripeSpans(entry.Size)
	if len(spans) == 1 {
		return n.diskRead(n.data[entry.Disk], fileName(int64(entry.ID)), ra)
	}
	parts := make([][]byte, len(spans))
	errs := make([]error, len(spans))
	var wg sync.WaitGroup
	for i := range spans {
		dd := n.data[(entry.Disk+i)%len(n.data)]
		wg.Add(1)
		go func(i int, dd *nodeDisk) {
			defer wg.Done()
			parts[i], errs[i] = n.diskRead(dd, chunkName(int64(entry.ID), i), ra)
		}(i, dd)
	}
	wg.Wait()
	var out []byte
	for i := range spans {
		if errs[i] != nil {
			return nil, errs[i]
		}
		out = append(out, parts[i]...)
	}
	return out, nil
}

// removeDataFile deletes whole-file and chunk representations.
func (n *Node) removeDataFile(entry metadata.NodeEntry) {
	os.Remove(filepath.Join(n.data[entry.Disk].dir, fileName(int64(entry.ID))))
	for i := range n.stripeSpans(entry.Size) {
		dd := n.data[(entry.Disk+i)%len(n.data)]
		os.Remove(filepath.Join(dd.dir, chunkName(int64(entry.ID), i)))
	}
}

func (n *Node) handleCreate(req proto.NodeCreateReq) error {
	if req.Size <= 0 {
		return fmt.Errorf("fs: create file %d with size %d", req.FileID, req.Size)
	}
	n.mu.Lock()
	diskIdx := n.nextDisk % len(n.data)
	n.nextDisk++
	n.mu.Unlock()
	// Creation order is popularity order (Section IV-A): the round-robin
	// cursor load-balances popular files across the node's data disks.
	if err := n.meta.Put(metadata.NodeEntry{
		ID:   int(req.FileID),
		Size: req.Size,
		Disk: diskIdx,
	}); err != nil {
		return err
	}
	n.saveManifest()
	return nil
}

func (n *Node) handleWrite(req proto.NodeWriteReq, sp *telemetry.Span) (bool, error) {
	entry, ok := n.meta.Lookup(int(req.FileID))
	if !ok {
		return false, fmt.Errorf("fs: write to unknown file %d", req.FileID)
	}
	n.noteAccess(int(req.FileID))
	name := fileName(req.FileID)
	ra := spanAttrib(sp, req.FileID)

	if n.cfg.WriteBuffer && n.bufferHasRoom(int64(len(req.Data))) {
		// Append-style write into the buffer disk's log area; the data
		// disk stays asleep. Flush happens lazily.
		if err := n.diskWrite(n.buffer, name, req.Data, true, ra); err != nil {
			return false, err
		}
		n.mu.Lock()
		n.dirty[int(req.FileID)] = int64(len(req.Data))
		n.bufWrites++
		n.mu.Unlock()
		n.bufWritesC.Inc()
		n.updateSize(entry, len(req.Data))
		n.saveManifest()
		return true, nil
	}

	if err := n.writeDataFile(entry, req.Data, ra); err != nil {
		return false, err
	}
	// A direct write supersedes any buffer-disk copy: drop stale
	// prefetched replicas and unflushed log entries so reads cannot see
	// old content.
	n.mu.Lock()
	_, wasDirty := n.dirty[int(req.FileID)]
	delete(n.dirty, int(req.FileID))
	n.mu.Unlock()
	if entry.Prefetched || wasDirty {
		n.meta.SetPrefetched(int(req.FileID), false)
		os.Remove(filepath.Join(n.buffer.dir, name))
		n.saveManifest()
	}
	n.updateSize(entry, len(req.Data))
	return false, nil
}

func (n *Node) updateSize(entry metadata.NodeEntry, size int) {
	if int64(size) != entry.Size && size > 0 {
		entry.Size = int64(size)
		_ = n.meta.Put(entry)
	}
}

func (n *Node) handleRead(fileID int64, sp *telemetry.Span) ([]byte, bool, error) {
	entry, ok := n.meta.Lookup(int(fileID))
	if !ok {
		return nil, false, fmt.Errorf("fs: read of unknown file %d", fileID)
	}
	n.noteAccess(int(fileID))
	name := fileName(fileID)
	ra := spanAttrib(sp, fileID)

	n.mu.Lock()
	_, isDirty := n.dirty[int(fileID)]
	n.mu.Unlock()

	// Serve from the buffer disk when it holds the newest copy: either a
	// prefetched replica or an unflushed buffered write.
	if entry.Prefetched || isDirty {
		data, err := n.diskRead(n.buffer, name, ra)
		if err == nil {
			n.mu.Lock()
			n.hits++
			n.mu.Unlock()
			n.hitsC.Inc()
			return data, true, nil
		}
		// Fall through to the data disk on buffer damage.
		n.logger.Printf("buffer read of file %d failed, falling back: %v", fileID, err)
	}

	data, err := n.readDataFile(entry, ra)
	if err != nil {
		return nil, false, err
	}
	n.mu.Lock()
	n.misses++
	n.mu.Unlock()
	n.missesC.Inc()
	return data, false, nil
}

func (n *Node) handleDelete(fileID int64) error {
	entry, ok := n.meta.Lookup(int(fileID))
	if !ok {
		return fmt.Errorf("fs: delete of unknown file %d", fileID)
	}
	n.mu.Lock()
	delete(n.dirty, int(fileID))
	n.mu.Unlock()
	os.Remove(filepath.Join(n.buffer.dir, fileName(fileID)))
	n.removeDataFile(entry)
	n.meta.Delete(int(fileID))
	n.saveManifest()
	return nil
}

// bufferHasRoom reports whether size more bytes fit in the buffer disk's
// configured capacity (prefetched copies plus unflushed writes count
// against it).
func (n *Node) bufferHasRoom(size int64) bool {
	if n.cfg.BufferCapacityBytes <= 0 {
		return true
	}
	used := n.meta.PrefetchedBytes()
	n.mu.Lock()
	for _, sz := range n.dirty {
		used += sz
	}
	n.mu.Unlock()
	return used+size <= n.cfg.BufferCapacityBytes
}

// handlePrefetch copies each locally-known file from its data disk into
// the buffer disk (step 3 of the process flow). Unknown ids are skipped —
// the server's view may be slightly ahead of a node restart; files that
// would overflow the buffer's capacity are skipped too (the greedy
// popularity-order selection of Section IV-B).
func (n *Node) handlePrefetch(ids []int64, sp *telemetry.Span) int64 {
	var count int64
	for _, id := range ids {
		entry, ok := n.meta.Lookup(int(id))
		if !ok {
			continue
		}
		if entry.Prefetched {
			count++
			continue
		}
		if !n.bufferHasRoom(entry.Size) {
			continue
		}
		// An unflushed buffered write means the data disks do not hold
		// the newest (or any) content yet; settle it first.
		n.mu.Lock()
		_, isDirty := n.dirty[int(id)]
		n.mu.Unlock()
		if isDirty {
			n.flushOne(int(id))
			if entry, ok = n.meta.Lookup(int(id)); !ok {
				continue
			}
		}
		ra := spanAttrib(sp, id)
		data, err := n.readDataFile(entry, ra)
		if err != nil {
			n.logger.Printf("prefetch read of file %d failed: %v", id, err)
			continue
		}
		if err := n.diskWrite(n.buffer, fileName(id), data, true, ra); err != nil {
			n.logger.Printf("prefetch write of file %d failed: %v", id, err)
			continue
		}
		n.meta.SetPrefetched(int(id), true)
		count++
	}
	if count > 0 {
		n.saveManifest()
	}
	return count
}

// handleReadAt serves a byte range. Buffer-resident copies (prefetched
// or dirty) are sliced from the buffer disk; otherwise only the stripe
// chunks overlapping the range touch their data disks.
func (n *Node) handleReadAt(req proto.NodeReadAtReq, sp *telemetry.Span) ([]byte, bool, error) {
	entry, ok := n.meta.Lookup(int(req.FileID))
	if !ok {
		return nil, false, fmt.Errorf("fs: read of unknown file %d", req.FileID)
	}
	if req.Offset < 0 || req.Length < 0 || req.Offset+req.Length > entry.Size {
		return nil, false, fmt.Errorf("fs: range [%d,%d) outside file %d of %d bytes",
			req.Offset, req.Offset+req.Length, req.FileID, entry.Size)
	}
	if req.Length == 0 {
		return nil, entry.Prefetched, nil
	}

	ra := spanAttrib(sp, req.FileID)
	n.mu.Lock()
	_, isDirty := n.dirty[int(req.FileID)]
	n.mu.Unlock()

	if entry.Prefetched || isDirty {
		data, err := n.diskReadAt(n.buffer, fileName(req.FileID), req.Offset, req.Length, ra)
		if err == nil {
			n.mu.Lock()
			n.hits++
			n.mu.Unlock()
			n.hitsC.Inc()
			return data, true, nil
		}
		n.logger.Printf("buffer ranged read of file %d failed, falling back: %v", req.FileID, err)
	}

	spans := n.stripeSpans(entry.Size)
	if len(spans) == 1 {
		data, err := n.diskReadAt(n.data[entry.Disk], fileName(req.FileID), req.Offset, req.Length, ra)
		if err != nil {
			return nil, false, err
		}
		n.mu.Lock()
		n.misses++
		n.mu.Unlock()
		n.missesC.Inc()
		return data, false, nil
	}

	// Striped: visit only the chunks the range overlaps.
	var out []byte
	chunkStart := int64(0)
	for i, span := range spans {
		chunkEnd := chunkStart + span
		lo, hi := req.Offset, req.Offset+req.Length
		if hi > chunkStart && lo < chunkEnd {
			from := max64(lo, chunkStart) - chunkStart
			to := min64(hi, chunkEnd) - chunkStart
			dd := n.data[(entry.Disk+i)%len(n.data)]
			part, err := n.diskReadAt(dd, chunkName(req.FileID, i), from, to-from, ra)
			if err != nil {
				return nil, false, err
			}
			out = append(out, part...)
		}
		chunkStart = chunkEnd
	}
	n.mu.Lock()
	n.misses++
	n.mu.Unlock()
	n.missesC.Inc()
	return out, false, nil
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// diskReadAt performs a modeled ranged read: wake if needed, charge the
// service latency of the range (not the whole file).
func (n *Node) diskReadAt(nd *nodeDisk, name string, off, length int64, ra reqAttrib) (data []byte, err error) {
	sp := ra.span.Child("disk.readat")
	sp.Annotate("disk", nd.label)
	defer func() { sp.End(err) }()
	nd.mu.Lock()
	defer nd.mu.Unlock()
	nd.beginWork(ra, sp)
	defer nd.endWork()
	n.wakeLocked(nd, sp)

	f, err := os.Open(filepath.Join(nd.dir, name))
	if err != nil {
		return nil, err
	}
	defer f.Close()
	data = make([]byte, length)
	if _, err := f.ReadAt(data, off); err != nil {
		return nil, err
	}
	n.serviceLocked(nd, length, false)
	return data, nil
}

// handleHints installs the server-forwarded access patterns
// (Section IV-C). Intervals arrive in real (wall-clock) seconds — the
// server observes real time — and are converted to this node's model
// time. A non-positive interval clears a file's hint.
func (n *Node) handleHints(req proto.NodeHintsReq) {
	scale := n.clock.Scale()
	n.mu.Lock()
	defer n.mu.Unlock()
	for _, h := range req.Hints {
		if h.MeanIntervalSec > 0 {
			n.hints[int(h.FileID)] = h.MeanIntervalSec * scale
		} else {
			delete(n.hints, int(h.FileID))
		}
	}
}

// noteAccess timestamps a file's most recent request (model time), the
// anchor the idle-window predictor extrapolates from.
func (n *Node) noteAccess(fileID int) {
	now := float64(n.clock.Now())
	n.mu.Lock()
	n.lastAccess[fileID] = now
	n.mu.Unlock()
}

// predictedGap estimates how long the given data disk will stay idle:
// the time until the earliest hinted next access of any file that still
// needs this disk (prefetched and dirty files are served by the buffer
// disk, so they do not pin data disks awake). It returns ok=false when no
// hints apply — the caller falls back to the reactive threshold.
func (n *Node) predictedGap(diskIdx int) (float64, bool) {
	now := float64(n.clock.Now())
	n.mu.Lock()
	defer n.mu.Unlock()
	next, have := 0.0, false
	for _, id := range n.meta.FilesOnDisk(diskIdx) {
		interval, hinted := n.hints[id]
		if !hinted {
			continue
		}
		if e, ok := n.meta.Lookup(id); ok && e.Prefetched {
			continue
		}
		if _, dirtyHere := n.dirty[id]; dirtyHere {
			continue
		}
		last, seen := n.lastAccess[id]
		if !seen {
			last = now
		}
		t := last + interval
		if t < now {
			t = now
		}
		if !have || t < next {
			next, have = t, true
		}
	}
	if !have {
		return 0, false
	}
	return next - now, true
}

// flushAll copies every dirty buffered write to its data disk (runs on
// shutdown).
func (n *Node) flushAll() {
	n.mu.Lock()
	ids := make([]int, 0, len(n.dirty))
	for id := range n.dirty {
		ids = append(ids, id)
	}
	n.mu.Unlock()
	for _, id := range ids {
		n.flushOne(id)
	}
}

func (n *Node) flushOne(id int) {
	entry, ok := n.meta.Lookup(id)
	if !ok {
		return
	}
	name := fileName(int64(id))
	data, err := n.diskRead(n.buffer, name, reqAttrib{})
	if err != nil {
		n.logger.Printf("flush read of file %d failed: %v", id, err)
		return
	}
	if err := n.writeDataFile(entry, data, reqAttrib{}); err != nil {
		n.logger.Printf("flush write of file %d failed: %v", id, err)
		return
	}
	n.mu.Lock()
	delete(n.dirty, id)
	n.mu.Unlock()
	n.flushesC.Inc()
	// Drop the buffer copy unless it doubles as a prefetched replica.
	if !entry.Prefetched {
		os.Remove(filepath.Join(n.buffer.dir, name))
	}
	n.saveManifest()
}

// beginWork/endWork bracket one modeled disk operation with its request
// attribution (callers hold nd.mu). Between them, every dwell the disk
// closes in a working state is charged to ra's trace, file, and span.
func (nd *nodeDisk) beginWork(ra reqAttrib, sp *telemetry.Span) {
	nd.curTrace, nd.curFile, nd.curSpan = ra.trace, ra.file, sp
}

func (nd *nodeDisk) endWork() {
	nd.curTrace, nd.curFile, nd.curSpan = 0, "", nil
}

// diskRead performs a modeled read on the given disk: wake if needed,
// charge service latency, account energy, rearm the idle timer.
func (n *Node) diskRead(nd *nodeDisk, name string, ra reqAttrib) (data []byte, err error) {
	sp := ra.span.Child("disk.read")
	sp.Annotate("disk", nd.label)
	defer func() { sp.End(err) }()
	nd.mu.Lock()
	defer nd.mu.Unlock()
	nd.beginWork(ra, sp)
	defer nd.endWork()
	n.wakeLocked(nd, sp)

	path := filepath.Join(nd.dir, name)
	data, err = os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	n.serviceLocked(nd, int64(len(data)), false)
	return data, nil
}

// diskWrite performs a modeled write; sequential=true uses the buffer
// disk's log-append cost model.
func (n *Node) diskWrite(nd *nodeDisk, name string, data []byte, sequential bool, ra reqAttrib) (err error) {
	sp := ra.span.Child("disk.write")
	sp.Annotate("disk", nd.label)
	defer func() { sp.End(err) }()
	nd.mu.Lock()
	defer nd.mu.Unlock()
	nd.beginWork(ra, sp)
	defer nd.endWork()
	n.wakeLocked(nd, sp)

	path := filepath.Join(nd.dir, name)
	if err = os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	n.serviceLocked(nd, int64(len(data)), sequential)
	return nil
}

// diskNow returns the current model time for one disk, floored at the
// disk's accounting point: with latency injection off the previous
// operation pushes the disk's clock ahead of real time (EndService is
// charged at start + modeled duration), and handing the state machine an
// earlier instant panics.
func (n *Node) diskNow(nd *nodeDisk) simtime.Time {
	now := n.clock.Now()
	if ss := nd.d.StateSince(); now < ss {
		return ss
	}
	return now
}

// wakeLocked brings a standby disk to Idle, charging spin-up latency.
// The spin-up gets a span of its own under sp, so a trace distinguishes
// a read that woke a sleeping spindle from one that found it spinning.
func (n *Node) wakeLocked(nd *nodeDisk, sp *telemetry.Span) {
	if nd.d.State() != disk.Standby {
		return
	}
	wsp := sp.Child("disk.spinup")
	wsp.Annotate("disk", nd.label)
	m := nd.d.Model()
	now := n.diskNow(nd)
	nd.d.BeginSpinUp(now)
	if n.cfg.InjectLatency {
		n.clock.Sleep(m.SpinUpSec)
	}
	end := n.clock.Now()
	if minEnd := now + simtime.Time(m.SpinUpSec); end < minEnd {
		end = minEnd
	}
	nd.d.CompleteSpinUp(end)
	wsp.Finish()
}

// serviceLocked charges one service on the disk and rearms DPM.
func (n *Node) serviceLocked(nd *nodeDisk, size int64, sequential bool) {
	m := nd.d.Model()
	dur := m.ServiceTime(size)
	if sequential {
		dur = m.SequentialTime(size)
	}
	start := n.diskNow(nd)
	nd.d.BeginService(start)
	if n.cfg.InjectLatency {
		n.clock.Sleep(dur)
	}
	end := n.clock.Now()
	if minEnd := start + simtime.Time(dur); end < minEnd {
		end = minEnd
	}
	nd.d.EndService(end, size)
	n.armTimerLocked(nd)
}

// armTimerLocked schedules the spin-down decision for a data disk. With
// server-forwarded hints predicting an idle window at least as long as
// the threshold, the disk sleeps immediately (Section IV-C); otherwise
// the reactive threshold timer applies.
func (n *Node) armTimerLocked(nd *nodeDisk) {
	if nd.isBuffer || n.cfg.IdleThresholdSec <= 0 {
		return // the buffer disk must stay available (Section III-C)
	}
	if nd.timer != nil {
		nd.timer.Stop()
	}
	delay := n.cfg.IdleThresholdSec
	if gap, ok := n.predictedGap(nd.index); ok && gap >= n.cfg.IdleThresholdSec {
		delay = 0.001 // effectively immediate, off the request path
	}
	nd.timer = time.AfterFunc(n.clock.RealDuration(delay), func() {
		nd.mu.Lock()
		defer nd.mu.Unlock()
		if nd.d.State() != disk.Idle {
			return
		}
		m := nd.d.Model()
		now := n.diskNow(nd)
		nd.d.BeginSpinDown(now)
		if n.cfg.InjectLatency {
			n.clock.Sleep(m.SpinDownSec)
		}
		end := n.clock.Now()
		if minEnd := now + simtime.Time(m.SpinDownSec); end < minEnd {
			end = minEnd
		}
		nd.d.CompleteSpinDown(end)
	})
}

// statsResp snapshots every disk's accounting.
func (n *Node) statsResp() proto.StatsResp {
	var resp proto.StatsResp
	snapshot := func(nd *nodeDisk) {
		nd.mu.Lock()
		defer nd.mu.Unlock()
		nd.d.Advance(n.diskNow(nd))
		st := nd.d.Stats()
		resp.Disks = append(resp.Disks, proto.DiskStats{
			Name:       st.Name,
			EnergyJ:    st.EnergyJ,
			SpinUps:    int64(st.SpinUps),
			SpinDowns:  int64(st.SpinDowns),
			Requests:   st.Requests,
			BytesMoved: st.BytesMoved,
			State:      nd.d.State().String(),
		})
	}
	snapshot(n.buffer)
	for _, nd := range n.data {
		snapshot(nd)
	}
	if reg := n.cfg.Metrics; reg != nil {
		// The registry already mirrors the buffer counters (and carries
		// the per-op and disk-transition telemetry on top), so export it
		// wholesale.
		for _, name := range reg.CounterNames() {
			resp.Counters = append(resp.Counters, proto.CounterStat{
				Name:  name,
				Value: reg.Counter(name).Value(),
			})
		}
	} else {
		hits, misses, bufWrites := n.Counters()
		resp.Counters = []proto.CounterStat{
			{Name: "node.buffer.hits", Value: hits},
			{Name: "node.buffer.misses", Value: misses},
			{Name: "node.buffer.writes", Value: bufWrites},
		}
	}
	return resp
}

// Counters returns the node's hit/miss/buffered-write counters (primarily
// for tests and the stats CLI).
func (n *Node) Counters() (hits, misses, bufferedWrites int64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.hits, n.misses, n.bufWrites
}
