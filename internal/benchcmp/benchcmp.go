// Package benchcmp parses `go test -bench -json` (test2json) streams and
// compares two runs, gating on geometric-mean regression.
//
// The CI perf gate works off committed baseline streams (BENCH_*.json):
// a fresh run on the current tree is parsed, matched against the
// baselines by benchmark name (GOMAXPROCS suffixes stripped, best-of-N
// per name), and the geomean of the per-benchmark new/old time ratios
// must stay under a threshold. Because the baselines were recorded on a
// different machine than the CI runner, the gate can optionally
// median-normalize the ratios first: dividing every ratio by the median
// ratio cancels a uniform machine-speed difference while leaving
// relative regressions — one benchmark suddenly 3x slower than its peers
// — fully visible.
package benchcmp

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// test2json event shape (only the fields the parser needs).
type event struct {
	Action  string `json:"Action"`
	Package string `json:"Package"`
	Output  string `json:"Output"`
}

// benchLine matches a benchmark result line inside a test2json Output
// field, e.g. "BenchmarkEndpointPipelined-8   300   180864 ns/op ...".
// The -N GOMAXPROCS suffix is stripped so baselines recorded on a
// machine with a different core count still match.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(-\d+)?\s+\d+\s+([0-9.]+(?:[eE][+-]?[0-9]+)?) ns/op`)

// Parse reads a test2json stream and returns the best (lowest) ns/op per
// benchmark, keyed "package/BenchmarkName". Non-JSON lines and non-bench
// output are skipped; concatenated streams from several `go test -json`
// invocations parse fine.
//
// go test flushes a benchmark's name before running it, so one result
// line often spans several Output events ("BenchmarkFoo", then
// "     200\t  1234 ns/op\n"). Output chunks are therefore reassembled
// per package and matched only on complete lines.
func Parse(r io.Reader) (map[string]float64, error) {
	best := make(map[string]float64)
	partial := make(map[string]string) // package -> unterminated output tail
	record := func(pkg, line string) {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			return
		}
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil || ns <= 0 {
			return
		}
		key := pkg + "/" + m[1]
		if cur, ok := best[key]; !ok || ns < cur {
			best[key] = ns
		}
	}

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || line[0] != '{' {
			continue
		}
		var ev event
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			continue // tolerate stray non-test2json lines
		}
		if ev.Action != "output" {
			continue
		}
		buf := partial[ev.Package] + ev.Output
		for {
			nl := strings.IndexByte(buf, '\n')
			if nl < 0 {
				break
			}
			record(ev.Package, buf[:nl])
			buf = buf[nl+1:]
		}
		partial[ev.Package] = buf
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("benchcmp: reading stream: %w", err)
	}
	for pkg, tail := range partial {
		record(pkg, tail)
	}
	return best, nil
}

// Row is one matched benchmark in a comparison.
type Row struct {
	Name   string  // package/BenchmarkName
	OldNs  float64 // baseline ns/op
	NewNs  float64 // fresh ns/op
	Ratio  float64 // NewNs / OldNs (raw)
	Normed float64 // Ratio / median ratio (only set when normalizing)
}

// Report is the outcome of comparing a fresh run against a baseline.
type Report struct {
	Rows       []Row
	Geomean    float64 // geomean of raw ratios
	Median     float64 // median raw ratio (the machine-speed estimate)
	Normalized bool
	// Gated is the value compared against the threshold: the geomean of
	// normalized ratios when Normalized, else the raw geomean.
	Gated float64
}

// Compare matches benchmarks present in both runs and computes the
// regression report. Benchmarks present in only one run are ignored:
// new benchmarks must not fail the gate, and retired ones must not
// block it. normalize divides every ratio by the median ratio before
// the geomean, cancelling uniform machine-speed differences.
func Compare(old, fresh map[string]float64, normalize bool) (Report, error) {
	var rep Report
	rep.Normalized = normalize
	names := make([]string, 0, len(old))
	for name, oldNs := range old {
		if newNs, ok := fresh[name]; ok && oldNs > 0 && newNs > 0 {
			names = append(names, name)
		}
	}
	if len(names) == 0 {
		return rep, fmt.Errorf("benchcmp: no benchmarks in common between baseline and fresh run")
	}
	sort.Strings(names)

	ratios := make([]float64, 0, len(names))
	for _, name := range names {
		r := fresh[name] / old[name]
		rep.Rows = append(rep.Rows, Row{Name: name, OldNs: old[name], NewNs: fresh[name], Ratio: r})
		ratios = append(ratios, r)
	}
	rep.Geomean = geomean(ratios)
	rep.Median = median(ratios)

	if normalize && rep.Median > 0 {
		normed := make([]float64, len(ratios))
		for i := range rep.Rows {
			rep.Rows[i].Normed = rep.Rows[i].Ratio / rep.Median
			normed[i] = rep.Rows[i].Normed
		}
		rep.Gated = geomean(normed)
	} else {
		rep.Gated = rep.Geomean
	}
	return rep, nil
}

// Check returns an error when the report's gated geomean exceeds max
// (e.g. 1.25 = fail on >25% regression).
func (rep Report) Check(max float64) error {
	if rep.Gated > max {
		return fmt.Errorf("benchcmp: geomean regression %.3fx exceeds the %.2fx threshold", rep.Gated, max)
	}
	return nil
}

// Format renders the report as an aligned text table.
func (rep Report) Format() string {
	var b strings.Builder
	for _, r := range rep.Rows {
		if rep.Normalized {
			fmt.Fprintf(&b, "%-70s %14.0f %14.0f %7.3fx %7.3fx\n", r.Name, r.OldNs, r.NewNs, r.Ratio, r.Normed)
		} else {
			fmt.Fprintf(&b, "%-70s %14.0f %14.0f %7.3fx\n", r.Name, r.OldNs, r.NewNs, r.Ratio)
		}
	}
	fmt.Fprintf(&b, "geomean ratio: %.3fx  median: %.3fx", rep.Geomean, rep.Median)
	if rep.Normalized {
		fmt.Fprintf(&b, "  normalized geomean: %.3fx", rep.Gated)
	}
	return b.String()
}

func geomean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}
