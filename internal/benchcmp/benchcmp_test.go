package benchcmp

import (
	"math"
	"strings"
	"testing"
)

// j builds one test2json output event line. Tabs in out are escaped so
// the line stays valid JSON (strings may not hold raw control chars).
func j(pkg, out string) string {
	out = strings.ReplaceAll(out, "\t", `\t`)
	return `{"Action":"output","Package":"` + pkg + `","Output":"` + out + `\n"}` + "\n"
}

func TestParseBasics(t *testing.T) {
	stream := strings.Join([]string{
		`{"Action":"start","Package":"eevfs/internal/proto"}`,
		j("eevfs/internal/proto", "goos: linux"),
		j("eevfs/internal/proto", "BenchmarkEndpointPipelined-8 \t     300\t    180864 ns/op"),
		j("eevfs/internal/proto", "BenchmarkEndpointSerialized \t     300\t   1267655 ns/op"),
		`{"Action":"pass","Package":"eevfs/internal/proto"}`,
		"not json at all",
		"",
	}, "\n")
	got, err := Parse(strings.NewReader(stream))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2: %v", len(got), got)
	}
	// The -8 GOMAXPROCS suffix must be stripped.
	if got["eevfs/internal/proto/BenchmarkEndpointPipelined"] != 180864 {
		t.Fatalf("pipelined = %v", got)
	}
	if got["eevfs/internal/proto/BenchmarkEndpointSerialized"] != 1267655 {
		t.Fatalf("serialized = %v", got)
	}
}

// TestParseReassemblesSplitOutput: go test flushes the benchmark name
// before running it, so the name and the numbers arrive as separate
// Output events; the parser must stitch them back together per package.
func TestParseReassemblesSplitOutput(t *testing.T) {
	stream := `{"Action":"output","Package":"p","Test":"BenchmarkSplit","Output":"BenchmarkSplit"}` + "\n" +
		j("p", " \t     200\t   1232028 ns/op") +
		`{"Action":"output","Package":"q","Output":"BenchmarkOther"}` + "\n" +
		j("q", " \t     100\t   55 ns/op")
	got, err := Parse(strings.NewReader(stream))
	if err != nil {
		t.Fatal(err)
	}
	if got["p/BenchmarkSplit"] != 1232028 || got["q/BenchmarkOther"] != 55 {
		t.Fatalf("got %v", got)
	}
}

func TestParseKeepsBestOfN(t *testing.T) {
	stream := j("p", "BenchmarkX \t 10\t 500 ns/op") +
		j("p", "BenchmarkX \t 10\t 300 ns/op") +
		j("p", "BenchmarkX \t 10\t 400 ns/op")
	got, err := Parse(strings.NewReader(stream))
	if err != nil {
		t.Fatal(err)
	}
	if got["p/BenchmarkX"] != 300 {
		t.Fatalf("best-of-n = %v, want 300", got["p/BenchmarkX"])
	}
}

func TestParseScientificNotationAndExtraMetrics(t *testing.T) {
	stream := j("p", "BenchmarkTiny-4 \t 1000000000\t 0.25 ns/op") +
		j("p", "BenchmarkAlloc \t 100\t 1.5e+03 ns/op\t  512 B/op\t  3 allocs/op")
	got, err := Parse(strings.NewReader(stream))
	if err != nil {
		t.Fatal(err)
	}
	if got["p/BenchmarkTiny"] != 0.25 || got["p/BenchmarkAlloc"] != 1500 {
		t.Fatalf("got %v", got)
	}
}

func TestCompareGateAndMismatchedSetsIgnored(t *testing.T) {
	old := map[string]float64{"p/A": 100, "p/B": 200, "p/Retired": 50}
	fresh := map[string]float64{"p/A": 110, "p/B": 220, "p/Brand": 999}
	rep, err := Compare(old, fresh, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 2 {
		t.Fatalf("%d rows, want 2 (unmatched benchmarks ignored)", len(rep.Rows))
	}
	if math.Abs(rep.Geomean-1.1) > 1e-9 {
		t.Fatalf("geomean = %v, want 1.1", rep.Geomean)
	}
	if err := rep.Check(1.25); err != nil {
		t.Fatalf("10%% regression must pass a 25%% gate: %v", err)
	}
	if err := rep.Check(1.05); err == nil {
		t.Fatal("10% regression must fail a 5% gate")
	}
}

// TestCompareNormalizationCancelsMachineSpeed: a uniformly 2x-slower
// machine must pass the normalized gate, but one benchmark regressing 3x
// against its peers must still fail it.
func TestCompareNormalizationCancelsMachineSpeed(t *testing.T) {
	old := map[string]float64{"p/A": 100, "p/B": 200, "p/C": 400}
	slowMachine := map[string]float64{"p/A": 200, "p/B": 400, "p/C": 800}
	rep, err := Compare(old, slowMachine, true)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rep.Gated-1.0) > 1e-9 {
		t.Fatalf("normalized geomean = %v, want 1.0 on a uniformly slow machine", rep.Gated)
	}
	if err := rep.Check(1.25); err != nil {
		t.Fatalf("uniform slowdown must pass the normalized gate: %v", err)
	}

	realRegression := map[string]float64{"p/A": 200, "p/B": 400, "p/C": 2400} // C: 3x vs peers
	rep, err = Compare(old, realRegression, true)
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Check(1.25); err == nil {
		t.Fatalf("relative 3x regression must fail the normalized gate (gated %.3f)", rep.Gated)
	}
}

func TestCompareNoOverlapErrors(t *testing.T) {
	if _, err := Compare(map[string]float64{"p/A": 1}, map[string]float64{"p/B": 1}, false); err == nil {
		t.Fatal("disjoint benchmark sets must error, not silently pass")
	}
}

func TestFormatMentionsGeomean(t *testing.T) {
	rep, err := Compare(map[string]float64{"p/A": 100}, map[string]float64{"p/A": 150}, true)
	if err != nil {
		t.Fatal(err)
	}
	out := rep.Format()
	if !strings.Contains(out, "p/A") || !strings.Contains(out, "geomean") {
		t.Fatalf("format output missing fields:\n%s", out)
	}
}
