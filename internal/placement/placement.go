// Package placement implements EEVFS's popularity-ordered round-robin data
// placement (Sections III-B and IV-A of the paper).
//
// The storage server distributes files to storage nodes in descending
// popularity order, round-robin: the most popular file goes to node 0, the
// second most popular to node 1, and so on. Each storage node then places
// the files it receives on its data disks, again round-robin in arrival
// order. Because arrival order is popularity order, both levels end up
// load-balanced by popularity.
package placement

import "fmt"

// Assignment records where every file lives: the storage node and the data
// disk within that node. Slices are indexed by file id.
type Assignment struct {
	Node []int // storage node index per file
	Disk []int // data-disk index within the node, per file
}

// NumFiles returns the number of placed files.
func (a Assignment) NumFiles() int { return len(a.Node) }

// Validate checks structural consistency against the cluster shape.
func (a Assignment) Validate(numNodes, disksPerNode int) error {
	if len(a.Node) != len(a.Disk) {
		return fmt.Errorf("placement: %d node entries vs %d disk entries", len(a.Node), len(a.Disk))
	}
	for f := range a.Node {
		if a.Node[f] < 0 || a.Node[f] >= numNodes {
			return fmt.Errorf("placement: file %d on node %d of %d", f, a.Node[f], numNodes)
		}
		if a.Disk[f] < 0 || a.Disk[f] >= disksPerNode {
			return fmt.Errorf("placement: file %d on disk %d of %d", f, a.Disk[f], disksPerNode)
		}
	}
	return nil
}

// RoundRobin places files given their popularity ranking (ranks[0] is the
// most popular file id). It panics on invalid cluster shapes; ranks must
// be a permutation of the file-id space (checked).
func RoundRobin(ranks []int, numNodes, disksPerNode int) (Assignment, error) {
	if numNodes <= 0 || disksPerNode <= 0 {
		return Assignment{}, fmt.Errorf("placement: invalid cluster shape %d nodes x %d disks", numNodes, disksPerNode)
	}
	n := len(ranks)
	seen := make([]bool, n)
	a := Assignment{Node: make([]int, n), Disk: make([]int, n)}
	perNodeCount := make([]int, numNodes)
	for i, fid := range ranks {
		if fid < 0 || fid >= n || seen[fid] {
			return Assignment{}, fmt.Errorf("placement: ranks is not a permutation (entry %d = %d)", i, fid)
		}
		seen[fid] = true
		node := i % numNodes
		a.Node[fid] = node
		a.Disk[fid] = perNodeCount[node] % disksPerNode
		perNodeCount[node]++
	}
	return a, nil
}

// Concentrate implements PDC-style placement (Pinheiro & Bianchini,
// discussed in Section II of the paper): the first disk is loaded with the
// most popular files, the second disk with the next most popular, and so
// on. Disks are ordered node-major: (node 0, disk 0), (node 0, disk 1),
// ..., (node 1, disk 0), ...
func Concentrate(ranks []int, numNodes, disksPerNode int) (Assignment, error) {
	if numNodes <= 0 || disksPerNode <= 0 {
		return Assignment{}, fmt.Errorf("placement: invalid cluster shape %d nodes x %d disks", numNodes, disksPerNode)
	}
	n := len(ranks)
	totalDisks := numNodes * disksPerNode
	perDisk := (n + totalDisks - 1) / totalDisks
	if perDisk == 0 {
		perDisk = 1
	}
	seen := make([]bool, n)
	a := Assignment{Node: make([]int, n), Disk: make([]int, n)}
	for i, fid := range ranks {
		if fid < 0 || fid >= n || seen[fid] {
			return Assignment{}, fmt.Errorf("placement: ranks is not a permutation (entry %d = %d)", i, fid)
		}
		seen[fid] = true
		globalDisk := i / perDisk
		if globalDisk >= totalDisks {
			globalDisk = totalDisks - 1
		}
		a.Node[fid] = globalDisk / disksPerNode
		a.Disk[fid] = globalDisk % disksPerNode
	}
	return a, nil
}

// FilesOnNode returns the file ids assigned to the given node, in file-id
// order.
func (a Assignment) FilesOnNode(node int) []int {
	var files []int
	for f, n := range a.Node {
		if n == node {
			files = append(files, f)
		}
	}
	return files
}

// LoadStats summarizes how balanced an assignment is under a workload.
type LoadStats struct {
	RequestsPerNode []int
	BytesPerNode    []int64
	RequestsPerDisk [][]int // [node][disk]
}

// Load computes per-node and per-disk load for the given per-file access
// counts and sizes. counts and sizes must be indexed by file id and match
// the assignment length.
func (a Assignment) Load(counts []int, sizes []int64, numNodes, disksPerNode int) (LoadStats, error) {
	if len(counts) != len(a.Node) || len(sizes) != len(a.Node) {
		return LoadStats{}, fmt.Errorf("placement: counts/sizes length mismatch")
	}
	if err := a.Validate(numNodes, disksPerNode); err != nil {
		return LoadStats{}, err
	}
	ls := LoadStats{
		RequestsPerNode: make([]int, numNodes),
		BytesPerNode:    make([]int64, numNodes),
		RequestsPerDisk: make([][]int, numNodes),
	}
	for n := range ls.RequestsPerDisk {
		ls.RequestsPerDisk[n] = make([]int, disksPerNode)
	}
	for f := range a.Node {
		n, d := a.Node[f], a.Disk[f]
		ls.RequestsPerNode[n] += counts[f]
		ls.BytesPerNode[n] += int64(counts[f]) * sizes[f]
		ls.RequestsPerDisk[n][d] += counts[f]
	}
	return ls, nil
}

// Imbalance returns max/mean of the per-node request load (1.0 = perfectly
// balanced). It returns 0 when there is no load at all.
func (ls LoadStats) Imbalance() float64 {
	total, max := 0, 0
	for _, c := range ls.RequestsPerNode {
		total += c
		if c > max {
			max = c
		}
	}
	if total == 0 {
		return 0
	}
	mean := float64(total) / float64(len(ls.RequestsPerNode))
	return float64(max) / mean
}
