package placement

import (
	"reflect"
	"testing"
	"testing/quick"

	"eevfs/internal/trace"
	"eevfs/internal/workload"
)

func identityRanks(n int) []int {
	r := make([]int, n)
	for i := range r {
		r[i] = i
	}
	return r
}

func TestRoundRobinBasic(t *testing.T) {
	// 6 files, 2 nodes, 2 disks. Popularity order = file id order.
	a, err := RoundRobin(identityRanks(6), 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	wantNode := []int{0, 1, 0, 1, 0, 1}
	wantDisk := []int{0, 0, 1, 1, 0, 0}
	if !reflect.DeepEqual(a.Node, wantNode) {
		t.Errorf("Node = %v, want %v", a.Node, wantNode)
	}
	if !reflect.DeepEqual(a.Disk, wantDisk) {
		t.Errorf("Disk = %v, want %v", a.Disk, wantDisk)
	}
}

func TestRoundRobinPopularityOrder(t *testing.T) {
	// ranks[0]=file 5 is most popular -> node 0 disk 0.
	ranks := []int{5, 4, 3, 2, 1, 0}
	a, err := RoundRobin(ranks, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if a.Node[5] != 0 || a.Node[4] != 1 || a.Node[3] != 2 || a.Node[2] != 0 {
		t.Errorf("popularity routing wrong: %v", a.Node)
	}
}

func TestRoundRobinRejectsBadShapes(t *testing.T) {
	if _, err := RoundRobin(identityRanks(3), 0, 1); err == nil {
		t.Error("0 nodes accepted")
	}
	if _, err := RoundRobin(identityRanks(3), 1, 0); err == nil {
		t.Error("0 disks accepted")
	}
}

func TestRoundRobinRejectsNonPermutation(t *testing.T) {
	for _, ranks := range [][]int{{0, 0, 1}, {0, 1, 5}, {-1, 0, 1}} {
		if _, err := RoundRobin(ranks, 2, 2); err == nil {
			t.Errorf("non-permutation %v accepted", ranks)
		}
	}
}

func TestValidate(t *testing.T) {
	a, _ := RoundRobin(identityRanks(10), 2, 3)
	if err := a.Validate(2, 3); err != nil {
		t.Fatalf("valid assignment rejected: %v", err)
	}
	if err := a.Validate(1, 3); err == nil {
		t.Error("node overflow not caught")
	}
	if err := a.Validate(2, 1); err == nil {
		t.Error("disk overflow not caught")
	}
	bad := Assignment{Node: []int{0}, Disk: []int{0, 0}}
	if err := bad.Validate(1, 1); err == nil {
		t.Error("length mismatch not caught")
	}
}

func TestFilesOnNode(t *testing.T) {
	a, _ := RoundRobin(identityRanks(7), 3, 1)
	got := a.FilesOnNode(0)
	want := []int{0, 3, 6}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("FilesOnNode(0) = %v, want %v", got, want)
	}
	if got := a.FilesOnNode(99); got != nil {
		t.Errorf("FilesOnNode(99) = %v, want nil", got)
	}
}

func TestLoadAndImbalance(t *testing.T) {
	a, _ := RoundRobin(identityRanks(4), 2, 2)
	counts := []int{10, 10, 10, 10}
	sizes := []int64{100, 100, 100, 100}
	ls, err := a.Load(counts, sizes, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if ls.RequestsPerNode[0] != 20 || ls.RequestsPerNode[1] != 20 {
		t.Errorf("RequestsPerNode = %v", ls.RequestsPerNode)
	}
	if ls.BytesPerNode[0] != 2000 {
		t.Errorf("BytesPerNode = %v", ls.BytesPerNode)
	}
	if got := ls.Imbalance(); got != 1 {
		t.Errorf("Imbalance = %g, want 1 (perfect)", got)
	}
}

func TestLoadMismatchedInputs(t *testing.T) {
	a, _ := RoundRobin(identityRanks(4), 2, 2)
	if _, err := a.Load([]int{1}, []int64{1, 1, 1, 1}, 2, 2); err == nil {
		t.Error("short counts accepted")
	}
}

func TestImbalanceEmptyLoad(t *testing.T) {
	ls := LoadStats{RequestsPerNode: []int{0, 0}}
	if got := ls.Imbalance(); got != 0 {
		t.Errorf("empty Imbalance = %g, want 0", got)
	}
}

// TestPopularityBalancing reproduces the paper's design claim: placing
// files round-robin in popularity order balances the request load across
// nodes even under a heavily skewed workload.
func TestPopularityBalancing(t *testing.T) {
	cfg := workload.DefaultSynthetic()
	cfg.MU = 100
	cfg.NumRequests = 20000
	tr, err := workload.Synthetic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	counts := tr.Counts()
	ranks := trace.RankByCount(counts)
	a, err := RoundRobin(ranks, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	ls, err := a.Load(counts, tr.FileSizes, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	if imb := ls.Imbalance(); imb > 1.25 {
		t.Errorf("popularity round-robin imbalance %g, want <= 1.25", imb)
	}

	// Contrast: placing by raw file id (ignoring popularity) on the same
	// skewed workload is much worse, because Poisson(100) mass is
	// concentrated in a contiguous id range.
	naive, _ := RoundRobin(identityRanks(len(counts)), 8, 2)
	nls, _ := naive.Load(counts, tr.FileSizes, 8, 2)
	if nls.Imbalance() < ls.Imbalance() {
		t.Logf("note: naive imbalance %g vs popularity %g", nls.Imbalance(), ls.Imbalance())
	}
}

// Property: RoundRobin assigns every file exactly once, within range, and
// the per-node file counts differ by at most one.
func TestQuickRoundRobinBalanced(t *testing.T) {
	f := func(nRaw, nodesRaw, disksRaw uint8) bool {
		n := int(nRaw)%300 + 1
		nodes := int(nodesRaw)%12 + 1
		disks := int(disksRaw)%6 + 1
		a, err := RoundRobin(identityRanks(n), nodes, disks)
		if err != nil {
			return false
		}
		if a.Validate(nodes, disks) != nil {
			return false
		}
		perNode := make([]int, nodes)
		for _, nd := range a.Node {
			perNode[nd]++
		}
		min, max := n, 0
		for _, c := range perNode {
			if c < min {
				min = c
			}
			if c > max {
				max = c
			}
		}
		return max-min <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkRoundRobin(b *testing.B) {
	ranks := identityRanks(1000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := RoundRobin(ranks, 8, 2); err != nil {
			b.Fatal(err)
		}
	}
}

func TestConcentratePlacesPopularFilesFirst(t *testing.T) {
	// 8 files, 2 nodes x 2 disks: 2 files per disk, popularity order.
	ranks := []int{7, 6, 5, 4, 3, 2, 1, 0} // file 7 most popular
	a, err := Concentrate(ranks, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Most popular two files on (node0, disk0).
	if a.Node[7] != 0 || a.Disk[7] != 0 || a.Node[6] != 0 || a.Disk[6] != 0 {
		t.Errorf("top files not concentrated: node=%v disk=%v", a.Node, a.Disk)
	}
	// Least popular two on (node1, disk1).
	if a.Node[0] != 1 || a.Disk[0] != 1 {
		t.Errorf("cold files misplaced: node=%v disk=%v", a.Node, a.Disk)
	}
	if err := a.Validate(2, 2); err != nil {
		t.Fatal(err)
	}
}

func TestConcentrateUnevenCounts(t *testing.T) {
	// 5 files over 4 disks: ceil(5/4)=2 per disk; overflow clamps to the
	// last disk.
	a, err := Concentrate(identityRanks(5), 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(2, 2); err != nil {
		t.Fatal(err)
	}
}

func TestConcentrateFewerFilesThanDisks(t *testing.T) {
	a, err := Concentrate(identityRanks(2), 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(4, 4); err != nil {
		t.Fatal(err)
	}
	// Each file on its own disk (perDisk = 1).
	if a.Node[0] != 0 || a.Disk[0] != 0 || a.Node[1] != 0 || a.Disk[1] != 1 {
		t.Errorf("placement = %v/%v", a.Node, a.Disk)
	}
}

func TestConcentrateRejectsBadInput(t *testing.T) {
	if _, err := Concentrate(identityRanks(3), 0, 1); err == nil {
		t.Error("0 nodes accepted")
	}
	if _, err := Concentrate([]int{0, 0, 1}, 2, 2); err == nil {
		t.Error("non-permutation accepted")
	}
}

// Property: Concentrate is a valid assignment and popularity-prefix-
// concentrated — the most popular ceil(n/disks) files share disk 0.
func TestQuickConcentrateValid(t *testing.T) {
	f := func(nRaw, nodesRaw, disksRaw uint8) bool {
		n := int(nRaw)%200 + 1
		nodes := int(nodesRaw)%8 + 1
		disks := int(disksRaw)%4 + 1
		a, err := Concentrate(identityRanks(n), nodes, disks)
		if err != nil {
			return false
		}
		if a.Validate(nodes, disks) != nil {
			return false
		}
		perDisk := (n + nodes*disks - 1) / (nodes * disks)
		for i := 0; i < perDisk && i < n; i++ {
			if a.Node[i] != 0 || a.Disk[i] != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
