// Package eevfs is a reproduction of "Energy Efficient Prefetching with
// Buffer Disks for Cluster File Systems" (Manzanares et al., ICPP 2010):
// an energy-efficient virtual file system for cluster storage that places
// data by popularity, prefetches hot files into always-on buffer disks,
// and transitions lightly-loaded data disks into standby.
//
// The package exposes three layers:
//
//   - The cluster simulator (Simulate, DefaultTestbed): a deterministic
//     discrete-event model of the paper's 8-node testbed that regenerates
//     every published figure. This substitutes for the paper's physical
//     power-measured cluster; see DESIGN.md for the substitution argument.
//
//   - Workload generators (SyntheticWorkload, BerkeleyWebWorkload): the
//     Poisson-MU popularity traces of Table II and the web-trace
//     equivalent of Fig. 6.
//
//   - The TCP prototype (StartServer, StartNode, Dial): a real
//     distributed file system with a storage server, storage-node
//     daemons whose disks are directories driven by the same power
//     models, and a client library.
//
// Quick start:
//
//	tr, _ := eevfs.SyntheticWorkload(eevfs.DefaultSyntheticConfig())
//	pf, _ := eevfs.Simulate(eevfs.DefaultTestbed(), tr)
//	npf, _ := eevfs.Simulate(eevfs.DefaultTestbed().NPF(), tr)
//	fmt.Printf("energy savings: %.1f%%\n", pf.EnergySavingsVs(npf))
package eevfs

import (
	"eevfs/internal/adaptive"
	"eevfs/internal/baseline"
	"eevfs/internal/cluster"
	"eevfs/internal/disk"
	"eevfs/internal/experiments"
	"eevfs/internal/fs"
	"eevfs/internal/proto"
	"eevfs/internal/replay"
	"eevfs/internal/trace"
	"eevfs/internal/workload"
)

// Simulation layer.
type (
	// SimConfig configures a simulated cluster run (policies + testbed).
	SimConfig = cluster.Config
	// SimNodeConfig describes one simulated storage node.
	SimNodeConfig = cluster.NodeConfig
	// SimResult carries one run's measurements: energy, transitions,
	// response times, hit ratios.
	SimResult = cluster.Result
)

// DefaultTestbed returns the simulated equivalent of the paper's Table I
// testbed (8 storage nodes, 1 buffer + 2 data disks each, K=70, hints on).
func DefaultTestbed() SimConfig { return cluster.DefaultTestbed() }

// Simulate runs one deterministic cluster simulation of the trace.
func Simulate(cfg SimConfig, tr *Trace) (SimResult, error) { return cluster.Run(cfg, tr) }

// Workload layer.
type (
	// Trace is an ordered file-request stream plus per-file sizes.
	Trace = trace.Trace
	// TraceRecord is one request in a Trace.
	TraceRecord = trace.Record
	// SyntheticConfig parameterizes the Table II synthetic workloads.
	SyntheticConfig = workload.SyntheticConfig
	// BerkeleyWebConfig parameterizes the Fig. 6 web-trace equivalent.
	BerkeleyWebConfig = workload.BerkeleyWebConfig
	// DriftingConfig parameterizes a workload whose hot set moves over
	// time (the ext-dynamic experiment).
	DriftingConfig = workload.DriftingConfig
	// DriftConfig parameterizes the composable drift workload — phase
	// rotation, flash crowds, and diurnal load — behind the adaptive
	// policy experiments.
	DriftConfig = workload.DriftConfig
	// AdaptivePolicyParams tunes the online adaptive power-management
	// arm (SimConfig.AdaptiveArm): EWMA gap estimation, adapted
	// spin-down thresholds, transition budget, and churn-triggered
	// re-prefetch.
	AdaptivePolicyParams = adaptive.Params
)

// DefaultSyntheticConfig returns the paper's default workload point
// (1000 files, 1000 requests, 10 MB, MU=1000, 700 ms inter-arrival).
func DefaultSyntheticConfig() SyntheticConfig { return workload.DefaultSynthetic() }

// SyntheticWorkload generates a Table II synthetic trace.
func SyntheticWorkload(cfg SyntheticConfig) (*Trace, error) { return workload.Synthetic(cfg) }

// DefaultBerkeleyWebConfig returns the Fig. 6 workload configuration.
func DefaultBerkeleyWebConfig() BerkeleyWebConfig { return workload.DefaultBerkeleyWeb() }

// BerkeleyWebWorkload generates the web-trace-equivalent workload.
func BerkeleyWebWorkload(cfg BerkeleyWebConfig) (*Trace, error) { return workload.BerkeleyWeb(cfg) }

// DefaultDriftingConfig returns the 10-phase drifting workload used by
// the dynamic re-prefetching experiment.
func DefaultDriftingConfig() DriftingConfig { return workload.DefaultDrifting() }

// DriftingWorkload generates a phase-shifting hot-set trace.
func DriftingWorkload(cfg DriftingConfig) (*Trace, error) { return workload.Drifting(cfg) }

// DefaultDriftConfig returns the strong-drift workload point of the
// ext-adaptive experiments (16 phase hot sets over 1600 files).
func DefaultDriftConfig() DriftConfig { return workload.DefaultDrift() }

// DriftWorkload generates a composable drift trace.
func DriftWorkload(cfg DriftConfig) (*Trace, error) { return workload.Drift(cfg) }

// DefaultAdaptivePolicyParams returns the tuned production parameter set
// for the adaptive policy arm.
func DefaultAdaptivePolicyParams() AdaptivePolicyParams { return adaptive.Defaults() }

// Disk models.
type (
	// DiskModel holds one drive type's performance and power parameters.
	DiskModel = disk.Model
)

// Drive parameter sets for the testbed's drive types (Table I).
var (
	DiskModelType1 = disk.ModelType1
	DiskModelType2 = disk.ModelType2
)

// TCP prototype layer.
type (
	// ServerConfig configures the storage-server daemon.
	ServerConfig = fs.ServerConfig
	// NodeConfig configures a storage-node daemon.
	NodeConfig = fs.NodeConfig
	// ClientConfig configures a client's transport (timeouts, retries).
	ClientConfig = fs.ClientConfig
	// TransportConfig bounds and retries every round trip on a
	// connection (dial/round-trip timeouts, retry backoff).
	TransportConfig = proto.TransportConfig
	// HealthConfig tunes the server's node failure detection and
	// background health probing.
	HealthConfig = fs.HealthConfig
	// Server is a running storage-server daemon.
	Server = fs.Server
	// Node is a running storage-node daemon.
	Node = fs.Node
	// Client talks to a server for metadata and to nodes for data.
	Client = fs.Client
)

// Typed failure sentinels from the prototype's network path; check with
// errors.Is against any client-returned error.
var (
	// ErrNodeUnavailable: the file's storage node is partitioned,
	// crashed, or repeatedly timing out.
	ErrNodeUnavailable = fs.ErrNodeUnavailable
	// ErrFileNotFound: the name is not in the server's namespace.
	ErrFileNotFound = fs.ErrFileNotFound
)

// StartServer launches the storage-server daemon.
func StartServer(cfg ServerConfig) (*Server, error) { return fs.StartServer(cfg) }

// StartNode launches a storage-node daemon.
func StartNode(cfg NodeConfig) (*Node, error) { return fs.StartNode(cfg) }

// Dial connects a client to a storage server with default transport
// settings.
func Dial(serverAddr string) (*Client, error) { return fs.Dial(serverAddr) }

// DialConfig connects a client with explicit timeout/retry settings.
func DialConfig(serverAddr string, cfg ClientConfig) (*Client, error) {
	return fs.DialConfig(serverAddr, cfg)
}

// Experiments layer.
type (
	// ExperimentOptions scales and seeds a regenerated experiment.
	ExperimentOptions = experiments.Options
	// ExperimentTable is a rendered table/figure artifact.
	ExperimentTable = experiments.Table
)

// ExperimentIDs lists every regenerable table and figure.
func ExperimentIDs() []string { return experiments.IDs() }

// RunExperiment regenerates one table or figure by id (e.g. "fig3a").
func RunExperiment(id string, o ExperimentOptions) (ExperimentTable, error) {
	return experiments.Run(id, o)
}

// Baseline comparators.
type (
	// BaselineName identifies a comparison system (MAID, PDC, ...).
	BaselineName = baseline.Name
	// BaselineComparison is one comparator's measured run.
	BaselineComparison = baseline.Comparison
)

// The comparator set from Section II of the paper.
var (
	BaselineAlwaysOn     = baseline.AlwaysOn
	BaselineThresholdDPM = baseline.ThresholdDPM
	BaselineMAID         = baseline.MAID
	BaselinePDC          = baseline.PDC
	BaselineEEVFS        = baseline.EEVFS
)

// RunBaselines simulates the trace under every comparator.
func RunBaselines(base SimConfig, tr *Trace) ([]BaselineComparison, error) {
	return baseline.RunAll(base, tr)
}

// Trace replay against a live deployment.
type (
	// ReplayOptions controls pacing, size scaling, and naming for a
	// replay against the TCP prototype.
	ReplayOptions = replay.Options
	// ReplayResult summarizes a replay run (client-observed response
	// times, hit ratio, errors).
	ReplayResult = replay.Result
)

// Populate creates a trace's files on a live cluster.
func Populate(cl *Client, tr *Trace, opts ReplayOptions) error {
	return replay.Populate(cl, tr, opts)
}

// PopulateByPopularity creates the files in descending popularity order,
// the layout step of the paper's process flow.
func PopulateByPopularity(cl *Client, tr *Trace, opts ReplayOptions) error {
	return replay.PopulateByPopularity(cl, tr, opts)
}

// Replay replays a trace against a live cluster with scaled pacing.
func Replay(cl *Client, tr *Trace, opts ReplayOptions) (ReplayResult, error) {
	return replay.Replay(cl, tr, opts)
}
