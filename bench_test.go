package eevfs_test

// One benchmark per table and figure of the paper, as required by the
// per-experiment index in DESIGN.md. Each benchmark regenerates its
// artifact through the same harness as cmd/eevfsbench and reports the
// headline quantity (energy savings, transitions, or response penalty)
// as a custom benchmark metric, so `go test -bench=.` doubles as a
// reproduction run.

import (
	"testing"

	"eevfs"
	"eevfs/internal/experiments"
)

// benchSweep runs a sweep-producing experiment and reports headline
// metrics from its points.
func benchEnergySweep(b *testing.B, sweep func(experiments.Options) (experiments.Sweep, error)) {
	b.Helper()
	var last experiments.Sweep
	for i := 0; i < b.N; i++ {
		s, err := sweep(experiments.Options{})
		if err != nil {
			b.Fatal(err)
		}
		last = s
	}
	for _, p := range last.Points {
		b.ReportMetric(p.PF.EnergySavingsVs(p.NPF), "savings%/"+p.Label)
	}
}

func BenchmarkTableITestbed(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.TableI(experiments.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTableIIParameters(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.TableII(experiments.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig3aEnergyVsDataSize(b *testing.B) {
	benchEnergySweep(b, experiments.DataSizeSweep)
}

func BenchmarkFig3bEnergyVsMU(b *testing.B) {
	benchEnergySweep(b, experiments.MUSweep)
}

func BenchmarkFig3cEnergyVsDelay(b *testing.B) {
	benchEnergySweep(b, experiments.DelaySweep)
}

func BenchmarkFig3dEnergyVsPrefetchCount(b *testing.B) {
	benchEnergySweep(b, experiments.PrefetchCountSweep)
}

func benchTransitionsSweep(b *testing.B, sweep func(experiments.Options) (experiments.Sweep, error)) {
	b.Helper()
	var last experiments.Sweep
	for i := 0; i < b.N; i++ {
		s, err := sweep(experiments.Options{})
		if err != nil {
			b.Fatal(err)
		}
		last = s
	}
	for _, p := range last.Points {
		b.ReportMetric(float64(p.PF.Transitions), "transitions/"+p.Label)
	}
}

func BenchmarkFig4aTransitionsVsDataSize(b *testing.B) {
	benchTransitionsSweep(b, experiments.DataSizeSweep)
}

func BenchmarkFig4bTransitionsVsMU(b *testing.B) {
	benchTransitionsSweep(b, experiments.MUSweep)
}

func BenchmarkFig4cTransitionsVsDelay(b *testing.B) {
	benchTransitionsSweep(b, experiments.DelaySweep)
}

func BenchmarkFig4dTransitionsVsPrefetchCount(b *testing.B) {
	benchTransitionsSweep(b, experiments.PrefetchCountSweep)
}

func benchResponseSweep(b *testing.B, sweep func(experiments.Options) (experiments.Sweep, error)) {
	b.Helper()
	var last experiments.Sweep
	for i := 0; i < b.N; i++ {
		s, err := sweep(experiments.Options{})
		if err != nil {
			b.Fatal(err)
		}
		last = s
	}
	for _, p := range last.Points {
		b.ReportMetric(p.PF.ResponsePenaltyVs(p.NPF), "penalty%/"+p.Label)
	}
}

func BenchmarkFig5aResponseVsDataSize(b *testing.B) {
	benchResponseSweep(b, experiments.DataSizeSweep)
}

func BenchmarkFig5bResponseVsMU(b *testing.B) {
	benchResponseSweep(b, experiments.MUSweep)
}

func BenchmarkFig5cResponseVsDelay(b *testing.B) {
	benchResponseSweep(b, experiments.DelaySweep)
}

func BenchmarkFig5dResponseVsPrefetchCount(b *testing.B) {
	benchResponseSweep(b, experiments.PrefetchCountSweep)
}

func BenchmarkFig6BerkeleyWebTrace(b *testing.B) {
	var last experiments.Sweep
	for i := 0; i < b.N; i++ {
		s, err := experiments.BerkeleyWebSweep(experiments.Options{})
		if err != nil {
			b.Fatal(err)
		}
		last = s
	}
	p := last.Points[0]
	b.ReportMetric(p.PF.EnergySavingsVs(p.NPF), "savings%")
	b.ReportMetric(float64(p.PF.Transitions), "transitions")
}

func BenchmarkExtDisksPerNode(b *testing.B) {
	benchEnergySweep(b, experiments.DisksPerNodeSweep)
}

func BenchmarkExtHints(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Run("ext-hints", experiments.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExtBaselines(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Run("ext-baselines", experiments.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExtWriteBuffer(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Run("ext-writes", experiments.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulateDefaultWorkload measures the raw simulator throughput
// on the paper's default point (1000 requests, 8 nodes): the cost of one
// full PF run.
func BenchmarkSimulateDefaultWorkload(b *testing.B) {
	tr, err := eevfs.SyntheticWorkload(eevfs.DefaultSyntheticConfig())
	if err != nil {
		b.Fatal(err)
	}
	cfg := eevfs.DefaultTestbed()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eevfs.Simulate(cfg, tr); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExtStripe(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Run("ext-stripe", experiments.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExtDynamicPrefetch(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Run("ext-dynamic", experiments.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExtThreshold(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Run("ext-threshold", experiments.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExtScale(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Run("ext-scale", experiments.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExtBuffers(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Run("ext-buffers", experiments.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}
