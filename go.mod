module eevfs

go 1.24
