GO ?= go

.PHONY: build test race vet fuzz verify bench bench-parallel bench-mux bench-trace bench-stream bench-load bench-compare load-smoke cover soak soak-failover soak-drift

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# Short fuzz pass over the codecs (v1 + multiplexed v2 framing), the
# stream demux, and the fault-injected frame path.
fuzz:
	$(GO) test ./internal/proto -run=^$$ -fuzz=FuzzReadFrame$$ -fuzztime=15s
	$(GO) test ./internal/proto -run=^$$ -fuzz=FuzzReadFrameID -fuzztime=15s
	$(GO) test ./internal/proto -run=^$$ -fuzz=FuzzMessageDecoders -fuzztime=15s
	$(GO) test ./internal/proto -run=^$$ -fuzz=FuzzRepDecoders -fuzztime=15s
	$(GO) test ./internal/proto -run=^$$ -fuzz=FuzzReadStreamFrames -fuzztime=15s
	$(GO) test ./internal/faultnet -run=^$$ -fuzz=FuzzCorruptedFrames -fuzztime=15s

# Per-suite benchmark commands. The recording targets below and the
# bench-compare gate invoke these SAME variables, so the suite a baseline
# was recorded with can never drift from the suite the gate reruns.
BENCH_CMD_parallel = $(GO) test -run '^$$' \
	-bench 'Sweep|RunMany|ServerLookup|ServerStats|Sharded|ServerMap|AtomicLog|AccessLog' \
	-benchtime 3x -count 3 -json \
	./internal/experiments ./internal/fs ./internal/metadata ./internal/trace
BENCH_CMD_mux = $(GO) test -run '^$$' -bench 'BenchmarkEndpoint(Serialized|Pipelined)' \
	-benchtime 200x -count 3 -json ./internal/proto
BENCH_CMD_trace = $(GO) test -run '^$$' -bench 'BenchmarkEndpointPipelined(Traced)?$$' \
	-benchtime 200x -count 3 -benchmem -json ./internal/proto
BENCH_CMD_stream = $(GO) test -run '^$$' -bench 'BenchmarkStream' \
	-benchtime 1x -count 3 -benchmem -json ./internal/fs
BENCH_CMD_load = $(GO) test -run '^$$' -bench 'BenchmarkLoad' \
	-benchtime 1x -count 3 -json ./internal/fs

# Snapshot every benchmark once (test2json stream) so perf regressions
# can be diffed against a committed baseline.
bench: bench-parallel bench-mux bench-trace bench-stream bench-load
	$(GO) test -run '^$$' -bench . -benchtime 1x -json ./... > BENCH_baseline.json

# The parallel-engine comparison (ISSUE 3 acceptance): sweep wall-clock
# sequential vs pooled, server ops/sec under concurrent clients, and the
# metadata/access-log microbenchmarks. Speedups require real cores —
# record GOMAXPROCS alongside the numbers.
bench-parallel:
	$(BENCH_CMD_parallel) > BENCH_parallel.json

# The multiplexed-transport comparison (ISSUE 5 acceptance): 8 concurrent
# callers taking turns on a serialized v1 connection vs pipelining on one
# multiplexed v2 connection, identical simulated service time.
bench-mux:
	$(BENCH_CMD_mux) > BENCH_mux.json

# The tracing-overhead comparison (ISSUE 7 acceptance): the pipelined
# mux benchmark with tracing off vs on at the production default 1%
# head-sampling rate (span per call, wire-propagated context). The
# traced variant must stay within a few percent of the plain one.
bench-trace:
	$(BENCH_CMD_trace) > BENCH_trace.json

# The streaming data-plane comparison (ISSUE 8 acceptance): chunked
# streamed reads at 1KB / 1MB / 64MB plus a streamed write and the
# whole-payload RPC read as the contrast row. The allocs/op columns are
# the O(chunk) guard — a 64MB read allocating like the file size means
# the pool regressed.
bench-stream:
	$(BENCH_CMD_stream) > BENCH_stream.json

# The load-harness capacity numbers (ISSUE 10 acceptance): fixed-work
# open/closed-loop runs through the full TCP stack — RPC round-trip
# capacity, mixed traffic, 1000-client fan-in, and accept-path connection
# cycling. Each reports achieved ops/s and read p99 alongside ns/op.
bench-load:
	$(BENCH_CMD_load) > BENCH_load.json

# The CI perf-regression gate: rerun the gated benchmark suites fresh and
# diff them against the committed baselines. Fails on a >25% geomean
# regression; override the threshold with BENCH_MAX_REGRESS (e.g.
# `make bench-compare BENCH_MAX_REGRESS=1.50` on a known-noisy runner).
# -normalize cancels uniform machine-speed differences between the
# machine that recorded the baselines and the one running the gate.
BENCH_MAX_REGRESS ?= 1.25
bench-compare:
	@tmp=$$(mktemp); \
	{ $(BENCH_CMD_parallel) > $$tmp && \
	  $(BENCH_CMD_mux) >> $$tmp && \
	  $(BENCH_CMD_trace) >> $$tmp && \
	  $(BENCH_CMD_stream) >> $$tmp && \
	  $(BENCH_CMD_load) >> $$tmp && \
	  $(GO) run ./cmd/benchdiff -max $(BENCH_MAX_REGRESS) -normalize \
		-fresh $$tmp BENCH_parallel.json BENCH_mux.json BENCH_trace.json BENCH_stream.json BENCH_load.json; }; \
	status=$$?; rm -f $$tmp; exit $$status

# The CI load-smoke lane: 60 seconds of open-loop load from 500 clients
# against a freshly booted in-process cluster (3 replicated metadata
# servers over 3 nodes). Fails on any typed error or a read/write/stream
# p99 above the (deliberately generous, CI-runner-friendly) 2s bound.
load-smoke:
	$(GO) run ./cmd/eevfsload -clients 500 -conns 32 -duration 60s \
		-rate 2000 -writes 0.1 -streams 0.1 -seed 1 \
		-report 10s -fail-on-errors -max-p99 2

# Coverage with a ratchet: the total must never drop below the committed
# COVERAGE_BASELINE. Raise the baseline when coverage durably improves.
# The profile goes to a scratch path by default so `make cover` never
# litters the working tree; CI overrides COVERPROFILE to keep it.
COVERPROFILE ?= /tmp/eevfs-coverage.out
cover:
	$(GO) test -coverprofile=$(COVERPROFILE) ./...
	@total=$$($(GO) tool cover -func=$(COVERPROFILE) | awk '/^total:/ { sub(/%/, "", $$NF); print $$NF }'); \
	base=$$(cat COVERAGE_BASELINE); \
	echo "total coverage: $$total% (baseline $$base%)"; \
	awk -v t="$$total" -v b="$$base" 'BEGIN { exit (t + 1e-9 < b) ? 1 : 0 }' || \
		{ echo "coverage ratchet FAILED: $$total% < baseline $$base%"; exit 1; }

# Randomized simulation soak (DESIGN.md §14): fresh seeds through every
# invariant oracle, plus a live TCP-stack scenario every 50 iterations
# (live scenarios roll replicated server groups and primary kills too).
# Failures shrink to a one-line repro; SOAK_SEED pins the seed base.
SOAK_SEED ?= 1
soak:
	$(GO) run ./cmd/eevfssim -seed $(SOAK_SEED) -n 500 -live 50

# The kill-the-primary battery (DESIGN.md §17): 200 seeded live runs,
# each booting a replicated metadata group and crashing the primary
# mid-workload, under the race detector. Convergence failures shrink to
# a one-line repro.
soak-failover:
	$(GO) run -race ./cmd/eevfssim -seed $(SOAK_SEED) -live-failover 200

# The adaptive-vs-NPF oracle battery (DESIGN.md §20): 200 seeded
# scenarios, every one steered into the online adaptive arm on a
# drifting workload, under the race detector. The dominance and
# transition-budget oracles judge each run; failures shrink to a
# one-line repro.
soak-drift:
	$(GO) run -race ./cmd/eevfssim -seed $(SOAK_SEED) -drift 200

# The full pre-merge gate: vet + build + the whole suite under the race
# detector (the chaos tests in internal/fs exercise real concurrency).
verify: vet build race
