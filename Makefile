GO ?= go

.PHONY: build test race vet fuzz verify bench bench-parallel cover soak

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# Short fuzz pass over the codec and the fault-injected frame path.
fuzz:
	$(GO) test ./internal/proto -run=^$$ -fuzz=FuzzReadFrame -fuzztime=15s
	$(GO) test ./internal/proto -run=^$$ -fuzz=FuzzMessageDecoders -fuzztime=15s
	$(GO) test ./internal/faultnet -run=^$$ -fuzz=FuzzCorruptedFrames -fuzztime=15s

# Snapshot every benchmark once (test2json stream) so perf regressions
# can be diffed against a committed baseline.
bench: bench-parallel
	$(GO) test -run '^$$' -bench . -benchtime 1x -json ./... > BENCH_baseline.json

# The parallel-engine comparison (ISSUE 3 acceptance): sweep wall-clock
# sequential vs pooled, server ops/sec under concurrent clients, and the
# metadata/access-log microbenchmarks. Speedups require real cores —
# record GOMAXPROCS alongside the numbers.
bench-parallel:
	$(GO) test -run '^$$' \
		-bench 'Sweep|RunMany|ServerLookup|ServerStats|Sharded|ServerMap|AtomicLog|AccessLog' \
		-benchtime 3x -json \
		./internal/experiments ./internal/fs ./internal/metadata ./internal/trace \
		> BENCH_parallel.json

# Coverage with a ratchet: the total must never drop below the committed
# COVERAGE_BASELINE. Raise the baseline when coverage durably improves.
cover:
	$(GO) test -coverprofile=coverage.out ./...
	@total=$$($(GO) tool cover -func=coverage.out | awk '/^total:/ { sub(/%/, "", $$NF); print $$NF }'); \
	base=$$(cat COVERAGE_BASELINE); \
	echo "total coverage: $$total% (baseline $$base%)"; \
	awk -v t="$$total" -v b="$$base" 'BEGIN { exit (t + 1e-9 < b) ? 1 : 0 }' || \
		{ echo "coverage ratchet FAILED: $$total% < baseline $$base%"; exit 1; }

# Randomized simulation soak (DESIGN.md §14): fresh seeds through every
# invariant oracle, plus a live TCP-stack scenario every 50 iterations.
# Failures shrink to a one-line repro; SOAK_SEED pins the seed base.
SOAK_SEED ?= 1
soak:
	$(GO) run ./cmd/eevfssim -seed $(SOAK_SEED) -n 500 -live 50

# The full pre-merge gate: vet + build + the whole suite under the race
# detector (the chaos tests in internal/fs exercise real concurrency).
verify: vet build race
