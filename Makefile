GO ?= go

.PHONY: build test race vet fuzz verify bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# Short fuzz pass over the codec and the fault-injected frame path.
fuzz:
	$(GO) test ./internal/proto -run=^$$ -fuzz=FuzzReadFrame -fuzztime=15s
	$(GO) test ./internal/proto -run=^$$ -fuzz=FuzzMessageDecoders -fuzztime=15s
	$(GO) test ./internal/faultnet -run=^$$ -fuzz=FuzzCorruptedFrames -fuzztime=15s

# Snapshot every benchmark once (test2json stream) so perf regressions
# can be diffed against a committed baseline.
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x -json ./... > BENCH_baseline.json

# The full pre-merge gate: vet + build + the whole suite under the race
# detector (the chaos tests in internal/fs exercise real concurrency).
verify: vet build race
