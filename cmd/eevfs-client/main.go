// Command eevfs-client is the CLI client for an EEVFS deployment.
//
// Subcommands:
//
//	eevfs-client -server host:port put <name> <local-file>
//	eevfs-client -server host:port get <name> [local-file]
//	eevfs-client -server host:port stream-put <name> <local-file>
//	eevfs-client -server host:port stream-get <name> [local-file]
//	eevfs-client -server host:port ls
//	eevfs-client -server host:port rm <name>
//	eevfs-client -server host:port prefetch <k>
//	eevfs-client -server host:port stats
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"eevfs/internal/fs"
	"eevfs/internal/proto"
	"eevfs/internal/replay"
	"eevfs/internal/trace"
)

var (
	timeScale *float64
	sizeScale *int64
)

func replayOpts() replay.Options {
	return replay.Options{TimeScale: *timeScale, SizeScale: *sizeScale}
}

func loadTrace(path string) *trace.Trace {
	f, err := os.Open(path)
	if err != nil {
		die(err)
	}
	defer f.Close()
	tr, err := trace.Parse(f)
	if err != nil {
		die(err)
	}
	return tr
}

func main() {
	server := flag.String("server", "127.0.0.1:7000", "storage server address")
	timeScale = flag.Float64("time-scale", 0, "replay pacing compression (0 = as fast as possible)")
	sizeScale = flag.Int64("size-scale", 1, "divide trace file sizes for populate/replay")
	dialTimeout := flag.Duration("dial-timeout", proto.DefaultDialTimeout,
		"timeout for establishing a server or node connection")
	rtTimeout := flag.Duration("rt-timeout", proto.DefaultRTTimeout,
		"timeout for one whole request round trip")
	retries := flag.Int("retries", proto.DefaultRetries,
		"additional attempts after a failed round trip (0 = none)")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
	}
	if *retries <= 0 {
		*retries = -1 // flag 0 means "no retries"; config 0 means "default"
	}

	cl, err := fs.DialConfig(*server, fs.ClientConfig{Transport: proto.TransportConfig{
		DialTimeout: *dialTimeout,
		RTTimeout:   *rtTimeout,
		Retries:     *retries,
	}})
	if err != nil {
		die(err)
	}
	defer cl.Close()

	switch args[0] {
	case "put":
		if len(args) != 3 {
			usage()
		}
		data, err := os.ReadFile(args[2])
		if err != nil {
			die(err)
		}
		if err := cl.Create(args[1], data); err != nil {
			die(err)
		}
		fmt.Printf("stored %s (%d bytes)\n", args[1], len(data))

	case "get":
		if len(args) < 2 || len(args) > 3 {
			usage()
		}
		data, fromBuffer, err := cl.Read(args[1])
		if err != nil {
			die(err)
		}
		src := "data disk"
		if fromBuffer {
			src = "buffer disk"
		}
		if len(args) == 3 {
			if err := os.WriteFile(args[2], data, 0o644); err != nil {
				die(err)
			}
			fmt.Printf("fetched %s (%d bytes, from %s) -> %s\n", args[1], len(data), src, args[2])
		} else {
			os.Stdout.Write(data)
		}

	case "stream-put":
		// Chunked upload through the streaming data plane: the file is
		// never held in memory, so this is the path for content larger
		// than a comfortable single RPC payload. Streaming replaces an
		// existing name's content, so a fresh name gets a placeholder
		// create first (which also decides placement).
		if len(args) != 3 {
			usage()
		}
		f, err := os.Open(args[2])
		if err != nil {
			die(err)
		}
		info, err := f.Stat()
		if err != nil {
			f.Close()
			die(err)
		}
		buffered, err := cl.WriteFrom(args[1], info.Size(), f)
		if errors.Is(err, fs.ErrFileNotFound) {
			if err = cl.Create(args[1], []byte{0}); err == nil {
				if _, serr := f.Seek(0, 0); serr != nil {
					f.Close()
					die(serr)
				}
				buffered, err = cl.WriteFrom(args[1], info.Size(), f)
			}
		}
		f.Close()
		if err != nil {
			die(err)
		}
		dst := "data disks"
		if buffered {
			dst = "buffer disk (write buffer)"
		}
		fmt.Printf("streamed %s (%d bytes) -> %s\n", args[1], info.Size(), dst)

	case "stream-get":
		if len(args) < 2 || len(args) > 3 {
			usage()
		}
		var w *os.File
		if len(args) == 3 {
			w, err = os.Create(args[2])
			if err != nil {
				die(err)
			}
		} else {
			w = os.Stdout
		}
		n, fromBuffer, err := cl.ReadTo(args[1], w)
		if len(args) == 3 {
			if cerr := w.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			die(err)
		}
		if len(args) == 3 {
			src := "data disk"
			if fromBuffer {
				src = "buffer disk"
			}
			fmt.Printf("streamed %s (%d bytes, from %s) -> %s\n", args[1], n, src, args[2])
		}

	case "ls":
		names, err := cl.List()
		if err != nil {
			die(err)
		}
		for _, n := range names {
			fmt.Println(n)
		}

	case "rm":
		if len(args) != 2 {
			usage()
		}
		if err := cl.Delete(args[1]); err != nil {
			die(err)
		}
		fmt.Printf("deleted %s\n", args[1])

	case "prefetch":
		if len(args) != 2 {
			usage()
		}
		k, err := strconv.Atoi(args[1])
		if err != nil {
			usage()
		}
		n, err := cl.Prefetch(k)
		if err != nil {
			die(err)
		}
		fmt.Printf("prefetched %d files into buffer disks\n", n)

	case "populate":
		if len(args) != 2 {
			usage()
		}
		tr := loadTrace(args[1])
		if err := replay.PopulateByPopularity(cl, tr, replayOpts()); err != nil {
			die(err)
		}
		fmt.Printf("populated %d files (popularity order)\n", tr.NumFiles())

	case "replay":
		if len(args) != 2 {
			usage()
		}
		tr := loadTrace(args[1])
		res, err := replay.Replay(cl, tr, replayOpts())
		if err != nil {
			die(err)
		}
		fmt.Printf("replayed %d reads, %d writes (%d errors) in %.1fs\n",
			res.Reads, res.Writes, res.Errors, res.WallSeconds)
		fmt.Printf("hit ratio %.1f%%  response %s\n", 100*res.HitRatio(), res.Response)

	case "stats":
		stats, err := cl.Stats()
		if err != nil {
			die(err)
		}
		printStats(stats)

	default:
		usage()
	}
}

// nodeOf splits a cluster-wide stats name ("node0/data1",
// "node2/node.buffer.hits") into its node group and the local remainder.
// Names without a prefix belong to the server itself.
func nodeOf(name string) (group, rest string) {
	if i := strings.Index(name, "/"); i > 0 && strings.HasPrefix(name, "node") {
		return name[:i], name[i+1:]
	}
	return "server", name
}

// printStats renders the cluster stats as one energy/transition table per
// storage node, cluster totals, and — when the peers report them — the
// telemetry counters grouped the same way.
func printStats(stats proto.StatsResp) {
	groups := []string{}
	byGroup := map[string][]proto.DiskStats{}
	for _, d := range stats.Disks {
		g, _ := nodeOf(d.Name)
		if _, ok := byGroup[g]; !ok {
			groups = append(groups, g)
		}
		byGroup[g] = append(byGroup[g], d)
	}

	var energy float64
	var ups, downs int64
	for _, g := range groups {
		fmt.Printf("%s:\n", g)
		fmt.Printf("  %-20s %-12s %10s %8s %8s %10s %12s\n",
			"disk", "state", "energy(J)", "spin-up", "spin-dn", "requests", "bytes")
		for _, d := range byGroup[g] {
			_, local := nodeOf(d.Name)
			fmt.Printf("  %-20s %-12s %10.1f %8d %8d %10d %12d\n",
				local, d.State, d.EnergyJ, d.SpinUps, d.SpinDowns, d.Requests, d.BytesMoved)
			energy += d.EnergyJ
			ups += d.SpinUps
			downs += d.SpinDowns
		}
	}
	fmt.Printf("total: %.1f J disk energy, %d power-state transitions\n", energy, ups+downs)

	if len(stats.Counters) == 0 {
		return
	}
	fmt.Println("\ncounters:")
	cgroups := []string{}
	byCGroup := map[string][]proto.CounterStat{}
	for _, c := range stats.Counters {
		g, _ := nodeOf(c.Name)
		if _, ok := byCGroup[g]; !ok {
			cgroups = append(cgroups, g)
		}
		byCGroup[g] = append(byCGroup[g], c)
	}
	for _, g := range cgroups {
		fmt.Printf("  %s:\n", g)
		for _, c := range byCGroup[g] {
			_, local := nodeOf(c.Name)
			fmt.Printf("    %-40s %12d\n", local, c.Value)
		}
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: eevfs-client [-server host:port] <command>
commands:
  put <name> <local-file>   store a file
  get <name> [local-file]   fetch a file (stdout if no target)
  stream-put <name> <local-file>  replace content via the chunked streaming plane (O(chunk) memory)
  stream-get <name> [local-file]  fetch via the streaming plane (stdout if no target)
  ls                        list files
  rm <name>                 delete a file
  prefetch <k>              prefetch the top-k popular files
  populate <trace-file>     create a trace's files (popularity order)
  replay <trace-file>       replay a trace (see -time-scale, -size-scale)
  stats                     per-node disk energy, power-state and counter report`)
	os.Exit(2)
}

func die(err error) {
	fmt.Fprintf(os.Stderr, "eevfs-client: %v\n", err)
	os.Exit(1)
}
