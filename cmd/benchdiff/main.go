// Command benchdiff compares a fresh `go test -bench -json` run against
// one or more committed baseline streams and fails when the geometric
// mean of the per-benchmark time ratios regresses past a threshold.
//
// Usage:
//
//	benchdiff -fresh fresh.json [-max 1.25] [-normalize] baseline.json...
//
// All baseline files are merged (best ns/op per benchmark wins), then
// matched against the fresh run by benchmark name; benchmarks present
// on only one side are ignored. With -normalize, every ratio is divided
// by the median ratio first, so a uniformly slower or faster machine
// (CI runner vs the laptop that recorded the baseline) cannot trip —
// or hide — the gate; only relative regressions count. The exit status
// is 1 on regression, 2 on usage or parse errors.
package main

import (
	"flag"
	"fmt"
	"os"

	"eevfs/internal/benchcmp"
)

func main() {
	var (
		freshPath = flag.String("fresh", "", "test2json stream of the fresh benchmark run (required)")
		max       = flag.Float64("max", 1.25, "maximum allowed geomean ratio (1.25 = fail on >25% regression)")
		normalize = flag.Bool("normalize", false, "divide ratios by their median to cancel uniform machine-speed differences")
	)
	flag.Parse()
	if *freshPath == "" || flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff -fresh fresh.json [-max 1.25] [-normalize] baseline.json...")
		os.Exit(2)
	}

	fresh, err := parseFile(*freshPath)
	if err != nil {
		fatal(err)
	}
	baseline := make(map[string]float64)
	for _, path := range flag.Args() {
		m, err := parseFile(path)
		if err != nil {
			fatal(err)
		}
		for name, ns := range m {
			if cur, ok := baseline[name]; !ok || ns < cur {
				baseline[name] = ns
			}
		}
	}

	rep, err := benchcmp.Compare(baseline, fresh, *normalize)
	if err != nil {
		fatal(err)
	}
	fmt.Println(rep.Format())
	if err := rep.Check(*max); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("benchdiff: OK (gate %.2fx)\n", *max)
}

func parseFile(path string) (map[string]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return benchcmp.Parse(f)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchdiff:", err)
	os.Exit(2)
}
