// Command eevfs-server runs the EEVFS storage-server daemon: it owns the
// name -> storage-node metadata, journals accesses for popularity, routes
// client requests, and commands prefetching on the storage nodes.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"eevfs/internal/fs"
	"eevfs/internal/proto"
	"eevfs/internal/telemetry"
)

func main() {
	var (
		addr  = flag.String("addr", "127.0.0.1:7000", "listen address")
		nodes = flag.String("nodes", "", "comma-separated storage-node addresses (required)")
		state = flag.String("state", "", "path for persisted metadata (empty = in-memory only)")

		dialTimeout = flag.Duration("dial-timeout", proto.DefaultDialTimeout,
			"timeout for establishing a storage-node connection")
		rtTimeout = flag.Duration("rt-timeout", proto.DefaultRTTimeout,
			"timeout for one whole server->node round trip")
		retries = flag.Int("retries", proto.DefaultRetries,
			"additional attempts after a failed node round trip (0 = none)")
		retryBackoff = flag.Duration("retry-backoff", proto.DefaultRetryBase,
			"initial retry backoff, doubled per attempt with jitter")
		failThreshold = flag.Int("fail-threshold", 3,
			"consecutive transport failures before a node is marked unhealthy")
		probeInterval = flag.Duration("probe-interval", time.Second,
			"background node health-check period (negative = disabled)")
		adminAddr = flag.String("admin-addr", "",
			"admin HTTP listen address serving /metrics, /healthz and /debug/pprof (empty = disabled)")
	)
	flag.Parse()

	if *nodes == "" {
		fmt.Fprintln(os.Stderr, "eevfs-server: -nodes is required")
		os.Exit(2)
	}
	var addrs []string
	for _, a := range strings.Split(*nodes, ",") {
		if a = strings.TrimSpace(a); a != "" {
			addrs = append(addrs, a)
		}
	}
	if *retries <= 0 {
		*retries = -1 // flag 0 means "no retries"; config 0 means "default"
	}

	var reg *telemetry.Registry
	if *adminAddr != "" {
		reg = telemetry.NewRegistry()
	}

	srv, err := fs.StartServer(fs.ServerConfig{
		Addr:      *addr,
		NodeAddrs: addrs,
		StateFile: *state,
		Metrics:   reg,
		Transport: proto.TransportConfig{
			DialTimeout: *dialTimeout,
			RTTimeout:   *rtTimeout,
			Retries:     *retries,
			RetryBase:   *retryBackoff,
		},
		Health: fs.HealthConfig{
			FailThreshold: *failThreshold,
			ProbeInterval: *probeInterval,
		},
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "eevfs-server: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("eevfs-server listening on %s, %d storage nodes\n", srv.Addr(), len(addrs))

	if *adminAddr != "" {
		admin, err := telemetry.StartAdmin(*adminAddr, reg, func() any {
			return map[string]any{"healthy_nodes": srv.Healthy()}
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "eevfs-server: admin listener: %v\n", err)
			srv.Close()
			os.Exit(1)
		}
		defer admin.Close()
		fmt.Printf("eevfs-server admin endpoint on http://%s/metrics\n", admin.Addr())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	if err := srv.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "eevfs-server: close: %v\n", err)
		os.Exit(1)
	}
}
