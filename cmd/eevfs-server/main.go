// Command eevfs-server runs the EEVFS storage-server daemon: it owns the
// name -> storage-node metadata, journals accesses for popularity, routes
// client requests, and commands prefetching on the storage nodes.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"eevfs/internal/fs"
	"eevfs/internal/proto"
	"eevfs/internal/telemetry"
)

func main() {
	var (
		addr  = flag.String("addr", "127.0.0.1:7000", "listen address")
		nodes = flag.String("nodes", "", "comma-separated storage-node addresses (required)")
		state = flag.String("state", "", "path for persisted metadata (empty = in-memory only)")

		dialTimeout = flag.Duration("dial-timeout", proto.DefaultDialTimeout,
			"timeout for establishing a storage-node connection")
		rtTimeout = flag.Duration("rt-timeout", proto.DefaultRTTimeout,
			"timeout for one whole server->node round trip")
		retries = flag.Int("retries", proto.DefaultRetries,
			"additional attempts after a failed node round trip (0 = none)")
		retryBackoff = flag.Duration("retry-backoff", proto.DefaultRetryBase,
			"initial retry backoff, doubled per attempt with jitter")
		failThreshold = flag.Int("fail-threshold", 3,
			"consecutive transport failures before a node is marked unhealthy")
		probeInterval = flag.Duration("probe-interval", time.Second,
			"background node health-check period (negative = disabled)")
		adminAddr = flag.String("admin-addr", "",
			"admin HTTP listen address serving /metrics, /healthz and /debug/pprof (empty = disabled)")
		peers = flag.String("peers", "",
			"comma-separated addresses of every metadata server in a replicated group, including this one (empty = standalone)")
		self = flag.Int("self", 0,
			"this server's index in -peers (index 0 boots as primary on a cold start)")
		mirrorPrefetch = flag.Bool("mirror-prefetch", false,
			"copy each prefetched file to a second node's buffer disk so reads survive the owner's death")
		policy = flag.String("policy", "static",
			"prefetch policy: static (prefetch only when a client commands it) or adaptive (re-prefetch automatically when the hot set drifts)")
		adaptiveK = flag.Int("adaptive-k", 0,
			"max files per adaptive re-prefetch (0 = default 32; a client prefetch's K takes over afterwards)")
		traceSample = flag.Float64("trace-sample", 0,
			"fraction of traces recorded in full (0 = tracing disabled, 1 = everything); errored and slow spans are always kept")
		traceBuffer = flag.Int("trace-buffer", 0,
			"span ring-buffer capacity (0 = default 4096)")
	)
	flag.Parse()

	if *nodes == "" {
		fmt.Fprintln(os.Stderr, "eevfs-server: -nodes is required")
		os.Exit(2)
	}
	var addrs []string
	for _, a := range strings.Split(*nodes, ",") {
		if a = strings.TrimSpace(a); a != "" {
			addrs = append(addrs, a)
		}
	}
	if *retries <= 0 {
		*retries = -1 // flag 0 means "no retries"; config 0 means "default"
	}
	var peerAddrs []string
	if *peers != "" {
		for _, a := range strings.Split(*peers, ",") {
			if a = strings.TrimSpace(a); a != "" {
				peerAddrs = append(peerAddrs, a)
			}
		}
		if *self < 0 || *self >= len(peerAddrs) {
			fmt.Fprintf(os.Stderr, "eevfs-server: -self %d outside -peers list of %d\n", *self, len(peerAddrs))
			os.Exit(2)
		}
	}

	var reg *telemetry.Registry
	if *adminAddr != "" {
		reg = telemetry.NewRegistry()
	}
	var tracer *telemetry.Tracer
	if *traceSample > 0 {
		tracer = telemetry.NewTracer(telemetry.TracerConfig{
			Capacity:   *traceBuffer,
			SampleRate: *traceSample,
			Seed:       uint64(os.Getpid()),
		})
	}

	srv, err := fs.StartServer(fs.ServerConfig{
		Addr:           *addr,
		NodeAddrs:      addrs,
		StateFile:      *state,
		Metrics:        reg,
		Peers:          peerAddrs,
		Self:           *self,
		MirrorPrefetch: *mirrorPrefetch,
		Policy:         *policy,
		AdaptiveK:      *adaptiveK,
		Tracer:         tracer,
		Transport: proto.TransportConfig{
			DialTimeout: *dialTimeout,
			RTTimeout:   *rtTimeout,
			Retries:     *retries,
			RetryBase:   *retryBackoff,
		},
		Health: fs.HealthConfig{
			FailThreshold: *failThreshold,
			ProbeInterval: *probeInterval,
		},
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "eevfs-server: %v\n", err)
		os.Exit(1)
	}
	if len(peerAddrs) > 0 {
		fmt.Printf("eevfs-server listening on %s, %d storage nodes, group member %d/%d\n",
			srv.Addr(), len(addrs), *self, len(peerAddrs))
	} else {
		fmt.Printf("eevfs-server listening on %s, %d storage nodes\n", srv.Addr(), len(addrs))
	}

	if *adminAddr != "" {
		admin, err := telemetry.StartAdminConfig(*adminAddr, telemetry.AdminConfig{
			Registry: reg,
			Tracer:   tracer,
			Health: func() any {
				primary, epoch, seq := srv.ReplStatus()
				return map[string]any{
					"healthy_nodes": srv.Healthy(),
					"primary":       primary,
					"repl_epoch":    epoch,
					"repl_seq":      seq,
				}
			},
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "eevfs-server: admin listener: %v\n", err)
			srv.Close()
			os.Exit(1)
		}
		defer admin.Close()
		fmt.Printf("eevfs-server admin endpoint on http://%s/metrics\n", admin.Addr())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	if err := srv.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "eevfs-server: close: %v\n", err)
		os.Exit(1)
	}
}
