// Command eevfs-server runs the EEVFS storage-server daemon: it owns the
// name -> storage-node metadata, journals accesses for popularity, routes
// client requests, and commands prefetching on the storage nodes.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"eevfs/internal/fs"
)

func main() {
	var (
		addr  = flag.String("addr", "127.0.0.1:7000", "listen address")
		nodes = flag.String("nodes", "", "comma-separated storage-node addresses (required)")
		state = flag.String("state", "", "path for persisted metadata (empty = in-memory only)")
	)
	flag.Parse()

	if *nodes == "" {
		fmt.Fprintln(os.Stderr, "eevfs-server: -nodes is required")
		os.Exit(2)
	}
	var addrs []string
	for _, a := range strings.Split(*nodes, ",") {
		if a = strings.TrimSpace(a); a != "" {
			addrs = append(addrs, a)
		}
	}

	srv, err := fs.StartServer(fs.ServerConfig{Addr: *addr, NodeAddrs: addrs, StateFile: *state})
	if err != nil {
		fmt.Fprintf(os.Stderr, "eevfs-server: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("eevfs-server listening on %s, %d storage nodes\n", srv.Addr(), len(addrs))

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	if err := srv.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "eevfs-server: close: %v\n", err)
		os.Exit(1)
	}
}
