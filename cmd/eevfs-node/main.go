// Command eevfs-node runs one EEVFS storage-node daemon: it manages a
// buffer-disk directory and N data-disk directories, injects the modeled
// disk latencies, applies the idle-threshold power management, and serves
// the node side of the EEVFS protocol.
//
// Example (three-node local cluster):
//
//	eevfs-node -addr :7001 -root /tmp/eevfs/n1 &
//	eevfs-node -addr :7002 -root /tmp/eevfs/n2 &
//	eevfs-node -addr :7003 -root /tmp/eevfs/n3 &
//	eevfs-server -addr :7000 -nodes localhost:7001,localhost:7002,localhost:7003
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"eevfs/internal/disk"
	"eevfs/internal/fs"
	"eevfs/internal/telemetry"
)

func main() {
	var (
		addr        = flag.String("addr", "127.0.0.1:7001", "listen address")
		root        = flag.String("root", "", "root directory holding the disk directories (required)")
		dataDisks   = flag.Int("data-disks", 2, "number of data disks")
		model       = flag.String("disk-model", disk.ModelType1.Name, "disk model name from the catalog")
		threshold   = flag.Float64("idle-threshold", 5, "disk idle threshold in model seconds (0 disables DPM)")
		timeScale   = flag.Float64("time-scale", 1, "model seconds per real second (>1 runs faster than real time)")
		noLatency   = flag.Bool("no-latency", false, "disable modeled latency injection")
		writeBuffer = flag.Bool("write-buffer", false, "buffer writes on the buffer disk (Section III-C)")
		stripe      = flag.Int64("stripe", 0, "stripe chunk size in bytes (0 = whole-file placement)")
		streamChunk = flag.Int64("stream-chunk", 0, "preferred streaming data-frame size in bytes (0 = protocol default; a client's explicit request wins)")
		adminAddr   = flag.String("admin-addr", "",
			"admin HTTP listen address serving /metrics, /healthz and /debug/pprof (empty = disabled)")
		traceSample = flag.Float64("trace-sample", 0,
			"fraction of traces recorded in full (0 = tracing disabled, 1 = everything); errored and slow spans are always kept")
		traceBuffer = flag.Int("trace-buffer", 0,
			"span ring-buffer capacity (0 = default 4096)")
	)
	flag.Parse()

	if *root == "" {
		fmt.Fprintln(os.Stderr, "eevfs-node: -root is required")
		os.Exit(2)
	}
	m, ok := disk.Catalog[*model]
	if !ok {
		fmt.Fprintf(os.Stderr, "eevfs-node: unknown disk model %q (have:", *model)
		for name := range disk.Catalog {
			fmt.Fprintf(os.Stderr, " %s", name)
		}
		fmt.Fprintln(os.Stderr, ")")
		os.Exit(2)
	}

	var reg *telemetry.Registry
	if *adminAddr != "" {
		reg = telemetry.NewRegistry()
	}
	var tracer *telemetry.Tracer
	var energy *telemetry.EnergyLedger
	if *traceSample > 0 {
		tracer = telemetry.NewTracer(telemetry.TracerConfig{
			Capacity:   *traceBuffer,
			SampleRate: *traceSample,
			Seed:       uint64(os.Getpid()),
		})
		energy = telemetry.NewEnergyLedger(0)
	}

	node, err := fs.StartNode(fs.NodeConfig{
		Addr:             *addr,
		RootDir:          *root,
		Metrics:          reg,
		DataDisks:        *dataDisks,
		DataModel:        m,
		BufferModel:      m,
		IdleThresholdSec: *threshold,
		TimeScale:        *timeScale,
		InjectLatency:    !*noLatency,
		WriteBuffer:      *writeBuffer,
		StripeChunkBytes: *stripe,
		StreamChunkBytes: *streamChunk,
		Tracer:           tracer,
		Energy:           energy,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "eevfs-node: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("eevfs-node listening on %s (root %s, %d data disks, model %s)\n",
		node.Addr(), *root, *dataDisks, m.Name)

	if *adminAddr != "" {
		admin, err := telemetry.StartAdminConfig(*adminAddr, telemetry.AdminConfig{
			Registry: reg,
			Tracer:   tracer,
			Energy:   energy,
			Health: func() any {
				hits, misses, bufWrites := node.Counters()
				return map[string]any{
					"buffer_hits":     hits,
					"buffer_misses":   misses,
					"buffered_writes": bufWrites,
				}
			},
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "eevfs-node: admin listener: %v\n", err)
			node.Close()
			os.Exit(1)
		}
		defer admin.Close()
		fmt.Printf("eevfs-node admin endpoint on http://%s/metrics\n", admin.Addr())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("eevfs-node: shutting down (flushing write buffer)")
	if err := node.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "eevfs-node: close: %v\n", err)
		os.Exit(1)
	}
}
