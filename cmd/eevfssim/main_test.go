package main

import "testing"

// TestDriftBatterySmoke runs a handful of drift-battery iterations in
// process: the adaptive-arm generator, the full oracle catalogue, and
// the exit-code plumbing that CI's soak-drift job depends on.
func TestDriftBatterySmoke(t *testing.T) {
	if code := driftBattery(1, 5, true, nil); code != 0 {
		t.Fatalf("drift battery failed with exit code %d", code)
	}
}
