// Command eevfssim is the deterministic-simulation soak runner: it
// generates randomized cluster scenarios from a base seed, checks every
// invariant oracle against each one, and on failure shrinks the scenario
// to a minimal reproducer and prints a one-line replay command.
//
// Usage:
//
//	eevfssim -seed=1 -n=200            # 200 scenarios from seed 1
//	eevfssim -duration=10m             # soak until the clock runs out
//	eevfssim -repro='v1,seed=42,...'   # replay one encoded scenario
//	eevfssim -repro='live,v1,seed=3'   # replay one live TCP-stack scenario
//	eevfssim -live=20                  # every 20th iteration: real TCP stack
//	eevfssim -live-failover=200        # N kill-the-primary failover scenarios
//	eevfssim -drift=200                # N adaptive-vs-NPF drift scenarios
//
// Exit status is 0 when every scenario upholds every oracle, 1 on any
// failure, 2 on usage errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"eevfs/internal/simtest"
)

func main() {
	var (
		seed     = flag.Uint64("seed", 1, "base seed; scenario i uses seed+i")
		n        = flag.Int("n", 200, "number of scenarios to run")
		duration = flag.Duration("duration", 0, "run until this much wall time has passed (overrides -n)")
		repro    = flag.String("repro", "", "replay one encoded scenario (from a previous failure) and exit")
		live     = flag.Int("live", 0, "every N-th iteration, also run a live TCP-stack scenario (0 = never)")
		failover = flag.Int("live-failover", 0, "run N live scenarios with a replicated server group and a forced primary kill, then exit (0 = disabled)")
		drift    = flag.Int("drift", 0, "run N adaptive-arm drift scenarios (every one exercises the adaptive oracles), then exit (0 = disabled)")
		out      = flag.String("out", "", "append failing repro commands to this file")
		verbose  = flag.Bool("v", false, "log every scenario, not just failures")
	)
	flag.Parse()

	if *repro != "" {
		os.Exit(replay(*repro))
	}

	var outFile *os.File
	if *out != "" {
		f, err := os.OpenFile(*out, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fmt.Fprintf(os.Stderr, "eevfssim: %v\n", err)
			os.Exit(2)
		}
		outFile = f
		defer outFile.Close()
	}

	if *failover > 0 {
		os.Exit(failoverBattery(*seed, *failover, *verbose, outFile))
	}
	if *drift > 0 {
		os.Exit(driftBattery(*seed, *drift, *verbose, outFile))
	}

	// The soak loop itself may use wall time (-duration is an operator
	// budget, not part of any scenario); each scenario's behavior depends
	// only on its seed.
	deadline := time.Time{}
	if *duration > 0 {
		deadline = time.Now().Add(*duration)
	}
	failures := 0
	ran := 0
	start := time.Now()
	for i := 0; ; i++ {
		if deadline.IsZero() {
			if i >= *n {
				break
			}
		} else if time.Now().After(deadline) {
			break
		}
		s := simtest.Generate(*seed + uint64(i))
		ran++
		if *verbose {
			fmt.Printf("run  seed=%d %s\n", s.Seed, s.Encode())
		}
		if f := simtest.Check(s); f != nil {
			failures++
			report(s, f, outFile)
		}
		if *live > 0 && i%*live == 0 {
			ls := simtest.GenerateLive(*seed + uint64(i))
			if *verbose {
				fmt.Printf("live seed=%d nodes=%d ops=%d kill=%d srv=%d kp=%v\n",
					ls.Seed, ls.Nodes, ls.Ops, ls.KillNode, ls.Servers, ls.KillPrimary)
			}
			if !runLive(ls, outFile) {
				failures++
			}
		}
	}
	fmt.Printf("eevfssim: %d scenarios, %d failures, %s\n", ran, failures, time.Since(start).Round(time.Millisecond))
	if failures > 0 {
		os.Exit(1)
	}
}

// replay decodes and re-checks one scenario — simulator or live,
// distinguished by the "live," prefix — printing the verdict.
func replay(encoded string) int {
	if simtest.IsLiveRepro(encoded) {
		ls, err := simtest.DecodeLiveScenario(encoded)
		if err != nil {
			fmt.Fprintf(os.Stderr, "eevfssim: %v\n", err)
			return 2
		}
		if f := checkLiveTmp(ls); f != nil {
			fmt.Printf("FAIL oracle=%s seed=%d: %s\n", f.Oracle, ls.Seed, f.Msg)
			return 1
		}
		fmt.Printf("PASS live seed=%d: all oracles hold\n", ls.Seed)
		return 0
	}
	s, err := simtest.DecodeScenario(encoded)
	if err != nil {
		fmt.Fprintf(os.Stderr, "eevfssim: %v\n", err)
		return 2
	}
	if f := simtest.Check(s); f != nil {
		fmt.Printf("FAIL oracle=%s seed=%d: %s\n", f.Oracle, s.Seed, f.Msg)
		return 1
	}
	fmt.Printf("PASS seed=%d: all oracles hold\n", s.Seed)
	return 0
}

// checkLiveTmp runs one live scenario in a throwaway scratch directory.
func checkLiveTmp(ls simtest.LiveScenario) *simtest.LiveFailure {
	dir, err := os.MkdirTemp("", "eevfssim-live-")
	if err != nil {
		return &simtest.LiveFailure{Oracle: "setup", Msg: err.Error()}
	}
	defer os.RemoveAll(dir)
	return simtest.CheckLive(ls, dir)
}

// runLive checks one live scenario and, on failure, shrinks it to a
// minimal same-oracle reproducer before printing the one-line repro.
// It reports whether the scenario passed.
func runLive(ls simtest.LiveScenario, outFile *os.File) bool {
	f := checkLiveTmp(ls)
	if f == nil {
		return true
	}
	min := simtest.ShrinkLive(ls, f, checkLiveTmp)
	line := fmt.Sprintf("FAIL live oracle=%s seed=%d (shrunk %d->%d ops in %d runs): %s\n  repro: %s",
		min.Failure.Oracle, ls.Seed, ls.Ops, min.Scenario.Ops, min.Runs,
		min.Failure.Msg, simtest.LiveReproCommand(min.Scenario))
	fmt.Println(line)
	if outFile != nil {
		fmt.Fprintln(outFile, line)
	}
	return false
}

// failoverBattery runs n live scenarios that each boot a replicated
// server group and kill the primary mid-run — the soak-scale proof
// behind the failover test battery.
func failoverBattery(seed uint64, n int, verbose bool, outFile *os.File) int {
	failures := 0
	start := time.Now()
	for i := 0; i < n; i++ {
		ls := simtest.GenerateLive(seed + uint64(i))
		ls.Servers = 2 + i%2 // alternate 2- and 3-member groups
		ls.KillPrimary = true
		if verbose {
			fmt.Printf("failover seed=%d nodes=%d ops=%d srv=%d\n", ls.Seed, ls.Nodes, ls.Ops, ls.Servers)
		}
		if !runLive(ls, outFile) {
			failures++
		}
	}
	fmt.Printf("eevfssim: %d failover scenarios, %d failures, %s\n", n, failures, time.Since(start).Round(time.Millisecond))
	if failures > 0 {
		return 1
	}
	return 0
}

// driftBattery runs n adaptive-arm drift scenarios: every iteration puts
// the online policy on a drifting workload and holds it to the
// adaptive-dominates-npf and transition-budget oracles (plus the whole
// base catalogue), instead of the ~quarter of the general soak space
// that lands on the adaptive branch.
func driftBattery(seed uint64, n int, verbose bool, outFile *os.File) int {
	failures := 0
	start := time.Now()
	for i := 0; i < n; i++ {
		s := simtest.GenerateDrift(seed + uint64(i))
		if verbose {
			fmt.Printf("drift seed=%d %s\n", s.Seed, s.Encode())
		}
		if f := simtest.Check(s); f != nil {
			failures++
			report(s, f, outFile)
		}
	}
	fmt.Printf("eevfssim: %d drift scenarios, %d failures, %s\n", n, failures, time.Since(start).Round(time.Millisecond))
	if failures > 0 {
		return 1
	}
	return 0
}

// report shrinks a failing scenario and prints the one-line repro.
func report(s simtest.Scenario, f *simtest.Failure, outFile *os.File) {
	min := simtest.Shrink(s, f, simtest.Check)
	line := fmt.Sprintf("FAIL oracle=%s seed=%d (shrunk %d->%d requests in %d runs): %s\n  repro: %s",
		min.Failure.Oracle, s.Seed, s.Requests, min.Scenario.Requests, min.Runs,
		min.Failure.Msg, simtest.ReproCommand(min.Scenario))
	fmt.Println(line)
	if outFile != nil {
		fmt.Fprintln(outFile, line)
	}
}
