package main

import (
	"encoding/json"
	"io"
	"log"
	"os"
	"path/filepath"
	"testing"
	"time"

	"eevfs/internal/fs"
)

func TestClusterAddrsAttachAndValidation(t *testing.T) {
	addrs, cleanup, err := clusterAddrs("10.0.0.1:7000,10.0.0.2:7000", 3, 3, "static", false, nil)
	if err != nil {
		t.Fatalf("attach: %v", err)
	}
	cleanup()
	if len(addrs) != 2 || addrs[0] != "10.0.0.1:7000" {
		t.Fatalf("attach parsed %v", addrs)
	}
	if _, _, err := clusterAddrs("", 0, 3, "static", false, nil); err == nil {
		t.Fatal("0 servers accepted")
	}
	if _, _, err := clusterAddrs("", 1, 0, "static", false, nil); err == nil {
		t.Fatal("0 nodes accepted")
	}
}

func TestSweepSpecValidation(t *testing.T) {
	for _, spec := range []string{"", "100", "100:200", "a:200:2", "100:b:2", "100:200:c",
		"0:200:2", "300:200:2", "100:200:1"} {
		if _, err := runSweep(fs.LoadConfig{}, spec, time.Second, 0); err == nil {
			t.Errorf("spec %q accepted", spec)
		}
	}
}

func TestKeptUp(t *testing.T) {
	ok := fs.LoadResult{OfferedRate: 100, AchievedRate: 99,
		Ops: map[string]fs.OpStats{fs.LoadOpRead: {Count: 10, P99: 0.01}}}
	if !keptUp(ok, 0) || !keptUp(ok, 0.5) {
		t.Fatal("healthy step judged saturated")
	}
	behind := ok
	behind.AchievedRate = 90
	if keptUp(behind, 0) {
		t.Fatal("90% of offered judged kept-up")
	}
	errored := ok
	errored.Failed = 1
	if keptUp(errored, 0) {
		t.Fatal("typed errors judged kept-up")
	}
	if keptUp(ok, 0.001) {
		t.Fatal("p99 over the bound judged kept-up")
	}
}

// TestSweepEndToEnd boots a standalone cluster the way main does, runs a
// short two-step sweep through it, and checks the rendered and JSON
// outputs — the whole CLI path short of flag parsing and os.Exit.
func TestSweepEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("boots a live cluster")
	}
	logger := log.New(io.Discard, "", 0)
	addrs, cleanup, err := clusterAddrs("", 1, 1, "static", false, logger)
	if err != nil {
		t.Fatalf("boot: %v", err)
	}
	defer cleanup()

	base := fs.LoadConfig{
		ServerAddrs: addrs,
		Clients:     8,
		Conns:       2,
		Files:       16,
		FileSize:    512,
		ZipfS:       1.1,
		WriteFrac:   0.2,
		Seed:        1,
		ReportEvery: 200 * time.Millisecond,
		OnReport:    printReport,
	}
	res, err := runSweep(base, "100:200:2", 500*time.Millisecond, 1)
	if err != nil {
		t.Fatalf("sweep: %v", err)
	}
	if len(res.Steps) != 2 {
		t.Fatalf("got %d steps, want 2", len(res.Steps))
	}
	for i, st := range res.Steps {
		if st.Result.Completed == 0 {
			t.Fatalf("step %d completed no ops", i)
		}
		if st.Result.Failed > 0 {
			t.Fatalf("step %d: %d typed errors: %v", i, st.Result.Failed, st.Result.Errors)
		}
	}
	printSweep(res)
	printResult(res.Steps[1].Result)

	path := filepath.Join(t.TempDir(), "sweep.json")
	if err := writeJSON(path, res); err != nil {
		t.Fatalf("writeJSON: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back SweepResult
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("result JSON does not round-trip: %v", err)
	}
	if len(back.Steps) != 2 || back.Steps[1].Rate != 200 {
		t.Fatalf("round-tripped sweep lost steps: %+v", back)
	}
	if err := writeJSON("", res); err != nil {
		t.Fatalf("empty path must be a no-op, got %v", err)
	}
}
