// Command eevfsload is the open-loop load harness for the real EEVFS
// TCP stack (DESIGN.md §21). It boots a live cluster in-process — a
// replicated metadata server group over N storage nodes — or attaches to
// a running one (-addr), then drives thousands of concurrent pipelined
// logical clients whose requests arrive on a Poisson, uniform, or bursty
// schedule, mixing RPC reads/writes and streamed transfers against a
// Zipf-popularity working set.
//
// It reports p50/p99/p999 latency per op class, achieved vs offered
// throughput, and the typed error taxonomy; -rate-sweep runs a stepped
// saturation search and reports the knee. -json emits the machine-
// readable result; -max-p99 / -fail-on-errors turn the run into a CI
// assertion.
//
// Examples:
//
//	eevfsload -clients 500 -rate 3000 -duration 60s -fail-on-errors -max-p99 0.5
//	eevfsload -clients 2000 -rate-sweep 2000:20000:8 -step-duration 10s -json sweep.json
//	eevfsload -addr 10.0.0.1:7000,10.0.0.2:7000 -clients 10000 -rate 12000 -duration 30s
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"eevfs/internal/disk"
	"eevfs/internal/fs"
)

func main() {
	var (
		addr        = flag.String("addr", "", "attach to running metadata servers (comma-separated) instead of booting a cluster")
		servers     = flag.Int("cluster-servers", 3, "replicated metadata servers to boot (in-process mode)")
		nodes       = flag.Int("cluster-nodes", 3, "storage nodes to boot (in-process mode)")
		policy      = flag.String("policy", "static", "prefetch policy for the booted servers: static or adaptive")
		injectLat   = flag.Bool("inject-latency", false, "boot nodes with modeled disk latency injection")
		clients     = flag.Int("clients", 500, "concurrent logical clients")
		conns       = flag.Int("conns", 64, "shared multiplexed connections (fs.Client instances)")
		duration    = flag.Duration("duration", 30*time.Second, "measured run length (0 with -ops for op-bounded runs)")
		maxOps      = flag.Int64("ops", 0, "stop after this many operations (0 = duration-bounded)")
		rate        = flag.Float64("rate", 0, "aggregate offered ops/sec (0 = closed loop)")
		process     = flag.String("process", "poisson", "arrival process: poisson, uniform, or burst")
		burstFactor = flag.Float64("burst-factor", 4, "burst-state rate multiplier (burst process)")
		burstFrac   = flag.Float64("burst-fraction", 0.1, "long-run fraction of time in the burst state")
		burstMean   = flag.Float64("burst-mean", 1, "mean burst dwell in seconds")
		files       = flag.Int("files", 512, "working-set size")
		fileSize    = flag.Int("file-size", 16384, "bytes per working-set file")
		zipfS       = flag.Float64("zipf", 1.1, "popularity exponent over the working set")
		writeFrac   = flag.Float64("writes", 0, "fraction of ops that are RPC writes")
		streamFrac  = flag.Float64("streams", 0, "fraction of ops that are streamed reads")
		seed        = flag.Uint64("seed", 1, "deterministic seed for arrivals and popularity")
		report      = flag.Duration("report", time.Second, "live report interval (0 = quiet)")
		jsonOut     = flag.String("json", "", "write the machine-readable result to this file")
		maxP99      = flag.Float64("max-p99", 0, "fail (exit 1) if any op class's p99 exceeds this many seconds")
		failOnErrs  = flag.Bool("fail-on-errors", false, "fail (exit 1) if any op returns a typed error")
		sweep       = flag.String("rate-sweep", "", "stepped saturation search lo:hi:steps (ops/sec); overrides -rate")
		stepDur     = flag.Duration("step-duration", 10*time.Second, "measured length of each sweep step")
		verbose     = flag.Bool("v", false, "daemon logs to stderr (default discarded)")
	)
	flag.Parse()

	logger := log.New(io.Discard, "", 0)
	if *verbose {
		logger = log.New(os.Stderr, "eevfsload ", log.LstdFlags)
	}

	serverAddrs, cleanup, err := clusterAddrs(*addr, *servers, *nodes, *policy, *injectLat, logger)
	if err != nil {
		fmt.Fprintln(os.Stderr, "eevfsload:", err)
		os.Exit(2)
	}
	defer cleanup()

	base := fs.LoadConfig{
		ServerAddrs:   serverAddrs,
		Clients:       *clients,
		Conns:         *conns,
		Duration:      *duration,
		MaxOps:        *maxOps,
		RatePerSec:    *rate,
		Process:       *process,
		BurstFactor:   *burstFactor,
		BurstFraction: *burstFrac,
		BurstMeanSec:  *burstMean,
		Files:         *files,
		FileSize:      *fileSize,
		ZipfS:         *zipfS,
		WriteFrac:     *writeFrac,
		StreamFrac:    *streamFrac,
		Seed:          *seed,
	}
	if *report > 0 {
		base.ReportEvery = *report
		base.OnReport = printReport
	}

	exit := 0
	if *sweep != "" {
		res, err := runSweep(base, *sweep, *stepDur, *maxP99)
		if err != nil {
			fmt.Fprintln(os.Stderr, "eevfsload:", err)
			cleanup()
			os.Exit(2)
		}
		printSweep(res)
		if err := writeJSON(*jsonOut, res); err != nil {
			fmt.Fprintln(os.Stderr, "eevfsload:", err)
			exit = 2
		}
		if *failOnErrs {
			for _, st := range res.Steps {
				if st.Result.Failed > 0 {
					fmt.Fprintf(os.Stderr, "eevfsload: FAIL: %d typed errors at %g ops/s: %v\n",
						st.Result.Failed, st.Rate, st.Result.Errors)
					exit = 1
				}
			}
		}
	} else {
		res, err := fs.RunLoad(base)
		if err != nil {
			fmt.Fprintln(os.Stderr, "eevfsload:", err)
			cleanup()
			os.Exit(2)
		}
		printResult(res)
		if err := writeJSON(*jsonOut, res); err != nil {
			fmt.Fprintln(os.Stderr, "eevfsload:", err)
			exit = 2
		}
		if *failOnErrs && res.Failed > 0 {
			fmt.Fprintf(os.Stderr, "eevfsload: FAIL: %d typed errors: %v\n", res.Failed, res.Errors)
			exit = 1
		}
		if *maxP99 > 0 {
			for class, st := range res.Ops {
				if st.Count > 0 && st.P99 > *maxP99 {
					fmt.Fprintf(os.Stderr, "eevfsload: FAIL: %s p99 %.1fms exceeds bound %.1fms\n",
						class, st.P99*1000, *maxP99*1000)
					exit = 1
				}
			}
		}
	}
	cleanup()
	os.Exit(exit)
}

// clusterAddrs resolves the target cluster: parse -addr, or boot a
// replicated group plus nodes in-process and return their addresses.
func clusterAddrs(attach string, servers, nodes int, policy string, injectLat bool, logger *log.Logger) ([]string, func(), error) {
	if attach != "" {
		return strings.Split(attach, ","), func() {}, nil
	}
	if servers < 1 || nodes < 1 {
		return nil, nil, fmt.Errorf("need at least 1 server and 1 node, got %d/%d", servers, nodes)
	}
	var closers []func()
	cleanup := func() {
		for i := len(closers) - 1; i >= 0; i-- {
			closers[i]()
		}
	}

	var nodeAddrs []string
	for i := 0; i < nodes; i++ {
		dir, err := os.MkdirTemp("", "eevfsload-node-")
		if err != nil {
			cleanup()
			return nil, nil, err
		}
		closers = append(closers, func() { os.RemoveAll(dir) })
		n, err := fs.StartNode(fs.NodeConfig{
			Addr:             "127.0.0.1:0",
			RootDir:          dir,
			DataDisks:        2,
			DataModel:        disk.ModelType1,
			BufferModel:      disk.ModelType1,
			IdleThresholdSec: 5,
			TimeScale:        2000,
			InjectLatency:    injectLat,
			Logger:           logger,
		})
		if err != nil {
			cleanup()
			return nil, nil, err
		}
		closers = append(closers, func() { n.Close() })
		nodeAddrs = append(nodeAddrs, n.Addr())
	}

	// Pre-bind the server listeners so every group member knows the full
	// peer list before any member starts (the replication bootstrap).
	lns := make([]net.Listener, servers)
	addrs := make([]string, servers)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			cleanup()
			return nil, nil, err
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	peers := addrs
	if servers == 1 {
		peers = nil // standalone: no replication plane
	}
	for i := 0; i < servers; i++ {
		srv, err := fs.StartServer(fs.ServerConfig{
			NodeAddrs: nodeAddrs,
			Logger:    logger,
			Peers:     peers,
			Self:      i,
			Listener:  lns[i],
			Policy:    policy,
		})
		if err != nil {
			cleanup()
			return nil, nil, err
		}
		closers = append(closers, func() { srv.Close() })
	}
	return addrs, cleanup, nil
}

// printReport renders one live tick: cumulative accounting plus the
// recent window's per-class tails.
func printReport(r fs.LoadReport) {
	line := fmt.Sprintf("[%5.1fs] issued=%d done=%d fail=%d rate=%.0f/s",
		r.Elapsed.Seconds(), r.Issued, r.Completed, r.Failed, r.WindowRate)
	for _, class := range []string{fs.LoadOpRead, fs.LoadOpWrite, fs.LoadOpStream} {
		w, ok := r.Window[class]
		if !ok || w.Count == 0 {
			continue
		}
		line += fmt.Sprintf("  %s p50=%.1fms p99=%.1fms", class, w.P50*1000, w.P99*1000)
	}
	fmt.Println(line)
}

func printResult(res fs.LoadResult) {
	fmt.Printf("\n%.1fs, %d clients over %d conns: issued=%d completed=%d failed=%d\n",
		res.DurationSec, res.Clients, res.Conns, res.Issued, res.Completed, res.Failed)
	if res.OfferedRate > 0 {
		fmt.Printf("offered %.0f ops/s, achieved %.0f ops/s (%.1f%%)\n",
			res.OfferedRate, res.AchievedRate, 100*res.AchievedRate/res.OfferedRate)
	} else {
		fmt.Printf("closed loop: achieved %.0f ops/s\n", res.AchievedRate)
	}
	classes := make([]string, 0, len(res.Ops))
	for class := range res.Ops {
		classes = append(classes, class)
	}
	sort.Strings(classes)
	for _, class := range classes {
		st := res.Ops[class]
		if st.Count == 0 {
			continue
		}
		fmt.Printf("  %-6s n=%-8d mean=%6.1fms p50=%6.1fms p99=%6.1fms p999=%6.1fms errs=%d\n",
			class, st.Count, st.Mean*1000, st.P50*1000, st.P99*1000, st.P999*1000, st.Errors)
	}
	if len(res.Errors) > 0 {
		fmt.Printf("  error taxonomy: %v\n", res.Errors)
	}
}

// SweepStep is one measured point of a rate sweep.
type SweepStep struct {
	Rate   float64       `json:"rate"`
	Result fs.LoadResult `json:"result"`
}

// SweepResult is the machine-readable outcome of -rate-sweep: every
// measured step plus the knee (the highest offered rate the cluster
// still kept up with).
type SweepResult struct {
	Steps []SweepStep `json:"steps"`
	// KneeRate is the highest offered rate with achieved >= 95% of
	// offered and (when -max-p99 is set) read p99 under the bound; 0
	// when even the lowest step saturated.
	KneeRate float64 `json:"knee_rate"`
}

// runSweep steps the offered rate from lo to hi and finds the knee.
func runSweep(base fs.LoadConfig, spec string, stepDur time.Duration, maxP99 float64) (SweepResult, error) {
	parts := strings.Split(spec, ":")
	if len(parts) != 3 {
		return SweepResult{}, fmt.Errorf("bad -rate-sweep %q (want lo:hi:steps)", spec)
	}
	lo, err1 := strconv.ParseFloat(parts[0], 64)
	hi, err2 := strconv.ParseFloat(parts[1], 64)
	steps, err3 := strconv.Atoi(parts[2])
	if err1 != nil || err2 != nil || err3 != nil || lo <= 0 || hi < lo || steps < 2 {
		return SweepResult{}, fmt.Errorf("bad -rate-sweep %q (want 0 < lo <= hi, steps >= 2)", spec)
	}
	var out SweepResult
	for i := 0; i < steps; i++ {
		rate := lo + (hi-lo)*float64(i)/float64(steps-1)
		cfg := base
		cfg.RatePerSec = rate
		cfg.Duration = stepDur
		cfg.MaxOps = 0
		cfg.SkipPreload = i > 0 // the first step created the working set
		fmt.Printf("--- sweep step %d/%d: offered %.0f ops/s for %s\n", i+1, steps, rate, stepDur)
		res, err := fs.RunLoad(cfg)
		if err != nil {
			return out, err
		}
		printResult(res)
		out.Steps = append(out.Steps, SweepStep{Rate: rate, Result: res})
		if keptUp(res, maxP99) {
			out.KneeRate = rate
		}
	}
	return out, nil
}

// keptUp reports whether the cluster kept up with one sweep step's
// offered rate: achieved within 95% of offered, no typed errors, and —
// when a p99 bound is set — the read tail under it.
func keptUp(res fs.LoadResult, maxP99 float64) bool {
	if res.AchievedRate < 0.95*res.OfferedRate || res.Failed > 0 {
		return false
	}
	if maxP99 > 0 {
		for _, st := range res.Ops {
			if st.Count > 0 && st.P99 > maxP99 {
				return false
			}
		}
	}
	return true
}

func printSweep(res SweepResult) {
	fmt.Println("\nrate sweep:")
	fmt.Printf("  %10s  %10s  %8s  %8s  %6s\n", "offered/s", "achieved/s", "p99(ms)", "p999(ms)", "errs")
	for _, st := range res.Steps {
		read := st.Result.Ops[fs.LoadOpRead]
		fmt.Printf("  %10.0f  %10.0f  %8.1f  %8.1f  %6d\n",
			st.Rate, st.Result.AchievedRate, read.P99*1000, read.P999*1000, st.Result.Failed)
	}
	if res.KneeRate > 0 {
		fmt.Printf("  knee: %.0f ops/s\n", res.KneeRate)
	} else {
		fmt.Println("  knee: below the lowest step (cluster saturated everywhere)")
	}
}

func writeJSON(path string, v any) error {
	if path == "" {
		return nil
	}
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
