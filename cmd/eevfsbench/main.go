// Command eevfsbench regenerates the paper's tables and figures from the
// EEVFS cluster simulator. With no flags it runs every experiment in
// DESIGN.md's per-experiment index and prints aligned text tables.
//
// Usage:
//
//	eevfsbench                     # run everything
//	eevfsbench -exp fig3a          # one experiment
//	eevfsbench -exp fig3a,fig4a    # several
//	eevfsbench -markdown           # markdown output (EXPERIMENTS.md body)
//	eevfsbench -plot               # ASCII bar charts for the figures
//	eevfsbench -requests 200       # shrink traces for a quick pass
//	eevfsbench -list               # list experiment ids
//	eevfsbench -trace t.txt        # PF vs NPF on an external trace file
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"eevfs/internal/cluster"
	"eevfs/internal/experiments"
	"eevfs/internal/trace"
)

// runTraceFile simulates an external trace under PF and NPF on the
// default testbed and prints the headline comparison.
func runTraceFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	tr, err := trace.Parse(f)
	if err != nil {
		return err
	}
	cfg := cluster.DefaultTestbed()
	pf, err := cluster.Run(cfg, tr)
	if err != nil {
		return err
	}
	npf, err := cluster.Run(cfg.NPF(), tr)
	if err != nil {
		return err
	}
	fmt.Printf("trace: %d files, %d requests, %.0f s span\n",
		tr.NumFiles(), len(tr.Records), tr.Duration())
	fmt.Printf("%-8s %14s %12s %14s %12s\n", "", "energy (J)", "transitions", "mean resp (s)", "hit ratio")
	fmt.Printf("%-8s %14.0f %12d %14.3f %11.1f%%\n", "PF", pf.TotalEnergyJ, pf.Transitions, pf.Response.Mean, 100*pf.HitRatio())
	fmt.Printf("%-8s %14.0f %12d %14.3f %11.1f%%\n", "NPF", npf.TotalEnergyJ, npf.Transitions, npf.Response.Mean, 100*npf.HitRatio())
	fmt.Printf("savings: %.1f%%   response penalty: %.1f%%\n",
		pf.EnergySavingsVs(npf), pf.ResponsePenaltyVs(npf))
	return nil
}

func main() {
	var (
		exp      = flag.String("exp", "", "comma-separated experiment ids (default: all)")
		markdown = flag.Bool("markdown", false, "emit markdown instead of aligned text")
		plot     = flag.Bool("plot", false, "render the figures as ASCII bar charts")
		requests = flag.Int("requests", 0, "override trace length (default 1000)")
		seed     = flag.Uint64("seed", 0, "override workload seed (default 1)")
		list     = flag.Bool("list", false, "list experiment ids and exit")
		traceIn  = flag.String("trace", "", "run PF vs NPF on a trace file (eevfs-trace/1 format) and exit")
	)
	flag.Parse()

	if *traceIn != "" {
		if err := runTraceFile(*traceIn); err != nil {
			fmt.Fprintf(os.Stderr, "eevfsbench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}

	ids := experiments.IDs()
	if *plot && *exp == "" {
		ids = experiments.PlottableIDs()
	}
	if *exp != "" {
		ids = strings.Split(*exp, ",")
	}
	opts := experiments.Options{Requests: *requests, Seed: *seed}

	if *plot {
		for _, id := range ids {
			id = strings.TrimSpace(id)
			chart, err := experiments.Plot(id, opts)
			if err != nil {
				fmt.Fprintf(os.Stderr, "eevfsbench: %v\n", err)
				os.Exit(1)
			}
			if err := chart.Render(os.Stdout); err != nil {
				fmt.Fprintf(os.Stderr, "eevfsbench: %v\n", err)
				os.Exit(1)
			}
			fmt.Println()
		}
		return
	}

	for _, id := range ids {
		id = strings.TrimSpace(id)
		t, err := experiments.Run(id, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "eevfsbench: %v\n", err)
			os.Exit(1)
		}
		var renderErr error
		if *markdown {
			renderErr = t.Markdown(os.Stdout)
		} else {
			renderErr = t.Render(os.Stdout)
			fmt.Println()
		}
		if renderErr != nil {
			fmt.Fprintf(os.Stderr, "eevfsbench: rendering %s: %v\n", id, renderErr)
			os.Exit(1)
		}
	}
}
