// Command eevfsbench regenerates the paper's tables and figures from the
// EEVFS cluster simulator. With no flags it runs every experiment in
// DESIGN.md's per-experiment index and prints aligned text tables.
//
// Usage:
//
//	eevfsbench                     # run everything
//	eevfsbench -exp fig3a          # one experiment
//	eevfsbench -exp fig3a,fig4a    # several
//	eevfsbench -markdown           # markdown output (EXPERIMENTS.md body)
//	eevfsbench -plot               # ASCII bar charts for the figures
//	eevfsbench -requests 200       # shrink traces for a quick pass
//	eevfsbench -list               # list experiment ids
//	eevfsbench -trace t.txt        # PF vs NPF on an external trace file
//	eevfsbench -chrome-trace o.json  # export one PF run's timeline for Perfetto
//	eevfsbench -stream             # live streaming data-plane throughput (1KB/1MB/64MB)
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"
	"time"

	"eevfs/internal/cluster"
	"eevfs/internal/disk"
	"eevfs/internal/experiments"
	"eevfs/internal/fs"
	"eevfs/internal/telemetry"
	"eevfs/internal/trace"
	"eevfs/internal/workload"
)

// runTraceFile simulates an external trace under PF and NPF on the
// default testbed and prints the headline comparison.
func runTraceFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	tr, err := trace.Parse(f)
	if err != nil {
		return err
	}
	cfg := cluster.DefaultTestbed()
	pf, err := cluster.Run(cfg, tr)
	if err != nil {
		return err
	}
	npf, err := cluster.Run(cfg.NPF(), tr)
	if err != nil {
		return err
	}
	fmt.Printf("trace: %d files, %d requests, %.0f s span\n",
		tr.NumFiles(), len(tr.Records), tr.Duration())
	fmt.Printf("%-8s %14s %12s %14s %12s\n", "", "energy (J)", "transitions", "mean resp (s)", "hit ratio")
	fmt.Printf("%-8s %14.0f %12d %14.3f %11.1f%%\n", "PF", pf.TotalEnergyJ, pf.Transitions, pf.Response.Mean, 100*pf.HitRatio())
	fmt.Printf("%-8s %14.0f %12d %14.3f %11.1f%%\n", "NPF", npf.TotalEnergyJ, npf.Transitions, npf.Response.Mean, 100*npf.HitRatio())
	fmt.Printf("savings: %.1f%%   response penalty: %.1f%%\n",
		pf.EnergySavingsVs(npf), pf.ResponsePenaltyVs(npf))
	return nil
}

// exportChromeTrace simulates one PF run on the default testbed — against
// an external trace file or the default synthetic workload — with the
// event journal attached, and writes the timeline as Chrome trace-event
// JSON loadable in ui.perfetto.dev or chrome://tracing.
func exportChromeTrace(out, traceIn string, requests int, seed uint64, traceSample float64, journalCap int) error {
	var tr *trace.Trace
	var err error
	if traceIn != "" {
		f, err := os.Open(traceIn)
		if err != nil {
			return err
		}
		defer f.Close()
		tr, err = trace.Parse(f)
		if err != nil {
			return err
		}
	} else {
		wcfg := workload.DefaultSynthetic()
		if requests > 0 {
			wcfg.NumRequests = requests
		}
		if seed != 0 {
			wcfg.Seed = seed
		}
		tr, err = workload.Synthetic(wcfg)
		if err != nil {
			return err
		}
	}

	cfg := cluster.DefaultTestbed()
	jour := &telemetry.Journal{}
	if traceSample > 0 && traceSample < 1 {
		// Thin only the per-request slices; state and service events are
		// never sampled away (the journal's invariant checks replay them).
		jour.SetRequestSampling(traceSample, 1)
	}
	// The registry mirrors the ring-cap eviction count (journal.evicted),
	// matching what the daemons surface on /metrics.prom, and the summary
	// line below reports it so a truncated timeline is never mistaken for
	// a complete one.
	reg := telemetry.NewRegistry()
	jour.BindRegistry(reg)
	if journalCap > 0 {
		jour.SetLimit(journalCap)
	}
	cfg.Journal = jour
	res, err := cluster.Run(cfg, tr)
	if err != nil {
		return err
	}

	f, err := os.Create(out)
	if err != nil {
		return err
	}
	if err := telemetry.WriteChromeTrace(f, jour.Events(), res.MakespanSec); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %d journal events (%d power transitions, %.0f s makespan) to %s\n",
		jour.Len(), res.Transitions, res.MakespanSec, out)
	if n := jour.Evicted(); n > 0 {
		fmt.Printf("journal ring cap %d evicted %d events (timeline is truncated)\n", journalCap, n)
	}
	return nil
}

// runStreamWorkload spins up an in-process live cluster (one storage
// node, the metadata server, a real TCP data path) with latency
// injection off and measures the streaming data plane end to end: for
// each payload size it streams a write and a read through the chunked
// v2 plane and prints the throughput, plus the whole-payload RPC read
// as the comparison row.
func runStreamWorkload() error {
	quiet := log.New(io.Discard, "", 0)
	node, err := fs.StartNode(fs.NodeConfig{
		Addr:             "127.0.0.1:0",
		RootDir:          os.TempDir() + "/eevfsbench-stream",
		DataDisks:        2,
		DataModel:        disk.ModelType1,
		BufferModel:      disk.ModelType1,
		IdleThresholdSec: 5,
		TimeScale:        2000,
		InjectLatency:    false,
		Logger:           quiet,
	})
	if err != nil {
		return err
	}
	defer node.Close()
	defer os.RemoveAll(os.TempDir() + "/eevfsbench-stream")
	srv, err := fs.StartServer(fs.ServerConfig{
		Addr:      "127.0.0.1:0",
		NodeAddrs: []string{node.Addr()},
		Logger:    quiet,
		Health:    fs.HealthConfig{ProbeInterval: -1},
	})
	if err != nil {
		return err
	}
	defer srv.Close()
	cl, err := fs.Dial(srv.Addr())
	if err != nil {
		return err
	}
	defer cl.Close()

	mbps := func(n int64, d time.Duration) float64 {
		return float64(n) / (1 << 20) / d.Seconds()
	}
	fmt.Printf("%-8s %18s %18s %18s\n", "size", "stream write MB/s", "stream read MB/s", "rpc read MB/s")
	for _, sz := range []int{1 << 10, 1 << 20, 64 << 20} {
		name := fmt.Sprintf("s%d.dat", sz)
		content := bytes.Repeat([]byte("streaming-plane-"), (sz+15)/16)[:sz]
		if err := cl.Create(name, []byte("seed")); err != nil {
			return err
		}
		start := time.Now()
		if _, err := cl.WriteFrom(name, int64(sz), bytes.NewReader(content)); err != nil {
			return err
		}
		wDur := time.Since(start)
		start = time.Now()
		n, _, err := cl.ReadTo(name, io.Discard)
		if err != nil {
			return err
		}
		if n != int64(sz) {
			return fmt.Errorf("stream read returned %d of %d bytes", n, sz)
		}
		rDur := time.Since(start)
		start = time.Now()
		got, _, err := cl.Read(name)
		if err != nil {
			return err
		}
		if len(got) != sz {
			return fmt.Errorf("rpc read returned %d of %d bytes", len(got), sz)
		}
		rpcDur := time.Since(start)
		label := fmt.Sprintf("%dKB", sz>>10)
		if sz >= 1<<20 {
			label = fmt.Sprintf("%dMB", sz>>20)
		}
		fmt.Printf("%-8s %18.1f %18.1f %18.1f\n",
			label, mbps(int64(sz), wDur), mbps(int64(sz), rDur), mbps(int64(sz), rpcDur))
	}
	return nil
}

func main() {
	var (
		exp      = flag.String("exp", "", "comma-separated experiment ids (default: all)")
		markdown = flag.Bool("markdown", false, "emit markdown instead of aligned text")
		plot     = flag.Bool("plot", false, "render the figures as ASCII bar charts")
		requests = flag.Int("requests", 0, "override trace length (default 1000)")
		seed     = flag.Uint64("seed", 0, "override workload seed (default 1)")
		parallel = flag.Int("parallel", 0, "simulation workers: 0 sequential, -1 GOMAXPROCS, n>1 a fixed pool (results are byte-identical)")
		list     = flag.Bool("list", false, "list experiment ids and exit")
		traceIn  = flag.String("trace", "", "run PF vs NPF on a trace file (eevfs-trace/1 format) and exit")
		chromeO  = flag.String("chrome-trace", "", "simulate one PF run and write its timeline as Chrome trace-event JSON to this file")
		traceSmp = flag.Float64("trace-sample", 1, "fraction of per-request journal events kept in the exported timeline (state transitions are always kept)")
		jourCap  = flag.Int("journal-cap", 0, "cap the event journal at this many entries (ring eviction, oldest first; 0 = unbounded); evictions are counted and reported")
		stream   = flag.Bool("stream", false, "measure the live streaming data plane (in-process cluster, 1KB/1MB/64MB) and exit")
	)
	flag.Parse()

	if *stream {
		if err := runStreamWorkload(); err != nil {
			fmt.Fprintf(os.Stderr, "eevfsbench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *chromeO != "" {
		if err := exportChromeTrace(*chromeO, *traceIn, *requests, *seed, *traceSmp, *jourCap); err != nil {
			fmt.Fprintf(os.Stderr, "eevfsbench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *traceIn != "" {
		if err := runTraceFile(*traceIn); err != nil {
			fmt.Fprintf(os.Stderr, "eevfsbench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}

	ids := experiments.IDs()
	if *plot && *exp == "" {
		ids = experiments.PlottableIDs()
	}
	if *exp != "" {
		ids = strings.Split(*exp, ",")
	}
	opts := experiments.Options{Requests: *requests, Seed: *seed, Workers: *parallel}

	if *plot {
		for _, id := range ids {
			id = strings.TrimSpace(id)
			chart, err := experiments.Plot(id, opts)
			if err != nil {
				fmt.Fprintf(os.Stderr, "eevfsbench: %v\n", err)
				os.Exit(1)
			}
			if err := chart.Render(os.Stdout); err != nil {
				fmt.Fprintf(os.Stderr, "eevfsbench: %v\n", err)
				os.Exit(1)
			}
			fmt.Println()
		}
		return
	}

	// RunMany fans the experiments over opts.Workers (sequentially for
	// the default Workers=0) and returns the tables in id order, so the
	// printed output is identical regardless of -parallel.
	tables, err := experiments.RunMany(ids, opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "eevfsbench: %v\n", err)
		os.Exit(1)
	}
	for i, t := range tables {
		var renderErr error
		if *markdown {
			renderErr = t.Markdown(os.Stdout)
		} else {
			renderErr = t.Render(os.Stdout)
			fmt.Println()
		}
		if renderErr != nil {
			fmt.Fprintf(os.Stderr, "eevfsbench: rendering %s: %v\n", strings.TrimSpace(ids[i]), renderErr)
			os.Exit(1)
		}
	}
}
