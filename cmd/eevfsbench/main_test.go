package main

import (
	"os"
	"path/filepath"
	"testing"

	"eevfs/internal/workload"
)

// writeTestTrace renders a small synthetic workload in the eevfs-trace/1
// text format and returns its path.
func writeTestTrace(t *testing.T) string {
	t.Helper()
	cfg := workload.DefaultSynthetic()
	cfg.NumRequests = 200
	tr, err := workload.Synthetic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "test.trace")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Write(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunTraceFile(t *testing.T) {
	if err := runTraceFile(writeTestTrace(t)); err != nil {
		t.Fatal(err)
	}
}

// TestExportChromeTrace drives the timeline export with request sampling
// and a tight journal ring cap, so the eviction accounting path runs.
func TestExportChromeTrace(t *testing.T) {
	out := filepath.Join(t.TempDir(), "timeline.json")
	if err := exportChromeTrace(out, "", 200, 7, 0.5, 64); err != nil {
		t.Fatal(err)
	}
	st, err := os.Stat(out)
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() == 0 {
		t.Fatal("chrome trace export wrote an empty file")
	}
	// Same export fed from a trace file instead of the synthetic default.
	out2 := filepath.Join(t.TempDir(), "timeline2.json")
	if err := exportChromeTrace(out2, writeTestTrace(t), 0, 0, 0, 0); err != nil {
		t.Fatal(err)
	}
}

// TestRunStreamWorkload runs the -stream mode end to end: a live
// in-process cluster, the 1KB/1MB/64MB streamed transfers, and the RPC
// comparison row. It doubles as a smoke test that the streaming plane
// sustains a 64MB file outside the unit-test harness.
func TestRunStreamWorkload(t *testing.T) {
	if testing.Short() {
		t.Skip("moves 64MB through a live TCP cluster")
	}
	if err := runStreamWorkload(); err != nil {
		t.Fatal(err)
	}
}
