// Command tracegen emits synthetic EEVFS traces in the eevfs-trace/1 text
// format, for feeding the simulator or replaying against the TCP
// prototype.
//
//	tracegen -kind synthetic -mu 1000 -requests 1000 > trace.txt
//	tracegen -kind web -working-set 60 > web.txt
package main

import (
	"flag"
	"fmt"
	"os"

	"eevfs/internal/trace"
	"eevfs/internal/workload"
)

func main() {
	var (
		kind       = flag.String("kind", "synthetic", "workload kind: synthetic | web")
		files      = flag.Int("files", 1000, "number of files")
		requests   = flag.Int("requests", 1000, "number of requests")
		sizeMB     = flag.Float64("size-mb", 10, "mean file size in MB")
		mu         = flag.Float64("mu", 1000, "Poisson popularity parameter (synthetic)")
		delayMS    = flag.Float64("delay-ms", 700, "inter-arrival delay in ms")
		writeFrac  = flag.Float64("write-frac", 0, "write fraction (synthetic)")
		workingSet = flag.Int("working-set", 60, "hot-set size (web)")
		zipf       = flag.Float64("zipf", 1.1, "Zipf exponent (web)")
		coldFrac   = flag.Float64("cold-frac", 0, "fraction of requests outside the hot set (web)")
		seed       = flag.Uint64("seed", 1, "PRNG seed")
	)
	flag.Parse()

	var tr *trace.Trace
	var err error
	switch *kind {
	case "synthetic":
		tr, err = workload.Synthetic(workload.SyntheticConfig{
			NumFiles:      *files,
			NumRequests:   *requests,
			MeanSize:      int64(*sizeMB * 1e6),
			MU:            *mu,
			InterArrival:  *delayMS / 1000,
			WriteFraction: *writeFrac,
			Seed:          *seed,
		})
	case "web":
		tr, err = workload.BerkeleyWeb(workload.BerkeleyWebConfig{
			NumFiles:     *files,
			NumRequests:  *requests,
			WorkingSet:   *workingSet,
			ZipfExponent: *zipf,
			ColdFraction: *coldFrac,
			MeanSize:     int64(*sizeMB * 1e6),
			InterArrival: *delayMS / 1000,
			Seed:         *seed,
		})
	default:
		fmt.Fprintf(os.Stderr, "tracegen: unknown kind %q\n", *kind)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
		os.Exit(1)
	}
	if err := tr.Write(os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
		os.Exit(1)
	}
}
