package eevfs_test

import (
	"io"
	"log"
	"testing"

	"eevfs"
)

// The tests in this file exercise the public API exactly as a downstream
// user would.

func TestPublicSimulationHeadline(t *testing.T) {
	tr, err := eevfs.SyntheticWorkload(eevfs.DefaultSyntheticConfig())
	if err != nil {
		t.Fatal(err)
	}
	pf, err := eevfs.Simulate(eevfs.DefaultTestbed(), tr)
	if err != nil {
		t.Fatal(err)
	}
	npf, err := eevfs.Simulate(eevfs.DefaultTestbed().NPF(), tr)
	if err != nil {
		t.Fatal(err)
	}
	if savings := pf.EnergySavingsVs(npf); savings <= 5 {
		t.Fatalf("headline savings %.1f%%, want > 5%%", savings)
	}
}

func TestPublicWebWorkload(t *testing.T) {
	tr, err := eevfs.BerkeleyWebWorkload(eevfs.DefaultBerkeleyWebConfig())
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumFiles() != 1000 || len(tr.Records) != 1000 {
		t.Fatalf("web workload shape: %d files, %d records", tr.NumFiles(), len(tr.Records))
	}
}

func TestPublicExperiments(t *testing.T) {
	ids := eevfs.ExperimentIDs()
	if len(ids) < 15 {
		t.Fatalf("only %d experiments registered", len(ids))
	}
	tab, err := eevfs.RunExperiment("fig6", eevfs.ExperimentOptions{Requests: 150})
	if err != nil {
		t.Fatal(err)
	}
	if tab.ID != "fig6" || len(tab.Rows) != 2 {
		t.Fatalf("fig6 table: %+v", tab)
	}
}

func TestPublicAdaptiveArm(t *testing.T) {
	dc := eevfs.DefaultDriftConfig()
	dc.NumFiles, dc.NumRequests, dc.Phases = 200, 200, 4
	tr, err := eevfs.DriftWorkload(dc)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Records) != dc.NumRequests {
		t.Fatalf("drift trace has %d records, want %d", len(tr.Records), dc.NumRequests)
	}
	params := eevfs.DefaultAdaptivePolicyParams()
	params.ChurnWindow, params.ChurnCooldown = 24, 3
	cfg := eevfs.DefaultTestbed().AdaptiveArm()
	cfg.AdaptiveParams = &params
	res, err := eevfs.Simulate(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	npf, err := eevfs.Simulate(eevfs.DefaultTestbed().NPF(), tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalEnergyJ <= 0 || res.TotalEnergyJ > 2*npf.TotalEnergyJ {
		t.Fatalf("adaptive arm energy %g J implausible against NPF %g J",
			res.TotalEnergyJ, npf.TotalEnergyJ)
	}

	// The legacy drifting generator stays reachable through the facade.
	oc := eevfs.DefaultDriftingConfig()
	oc.NumFiles, oc.NumRequests = 100, 50
	if _, err := eevfs.DriftingWorkload(oc); err != nil {
		t.Fatal(err)
	}
}

func TestPublicBaselines(t *testing.T) {
	tr, err := eevfs.BerkeleyWebWorkload(eevfs.BerkeleyWebConfig{
		NumFiles: 200, NumRequests: 100, WorkingSet: 30, ZipfExponent: 1.1,
		MeanSize: 1e6, InterArrival: 0.1, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	comps, err := eevfs.RunBaselines(eevfs.DefaultTestbed(), tr)
	if err != nil {
		t.Fatal(err)
	}
	found := map[eevfs.BaselineName]bool{}
	for _, c := range comps {
		found[c.Name] = true
	}
	for _, want := range []eevfs.BaselineName{
		eevfs.BaselineAlwaysOn, eevfs.BaselineThresholdDPM, eevfs.BaselineMAID,
		eevfs.BaselinePDC, eevfs.BaselineEEVFS,
	} {
		if !found[want] {
			t.Errorf("missing comparator %s", want)
		}
	}
}

func TestPublicFSRoundTrip(t *testing.T) {
	quiet := log.New(io.Discard, "", 0)
	node, err := eevfs.StartNode(eevfs.NodeConfig{
		Addr: "127.0.0.1:0", RootDir: t.TempDir(), DataDisks: 1,
		DataModel: eevfs.DiskModelType1, BufferModel: eevfs.DiskModelType1,
		IdleThresholdSec: 5, TimeScale: 2000, InjectLatency: true, Logger: quiet,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	srv, err := eevfs.StartServer(eevfs.ServerConfig{
		Addr: "127.0.0.1:0", NodeAddrs: []string{node.Addr()}, Logger: quiet,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cl, err := eevfs.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	if err := cl.Create("hello.txt", []byte("hello, eevfs")); err != nil {
		t.Fatal(err)
	}
	got, _, err := cl.Read("hello.txt")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "hello, eevfs" {
		t.Fatalf("read %q", got)
	}
	if _, err := cl.Prefetch(10); err != nil {
		t.Fatal(err)
	}
	if _, fromBuffer, _ := cl.Read("hello.txt"); !fromBuffer {
		t.Fatal("prefetched file not served from buffer")
	}
}
